package labeled

import (
	"math/rand"
	"testing"

	"light/internal/gen"
	"light/internal/graph"
	"light/internal/pattern"
	"light/internal/plan"
)

// bruteLabeled counts label-preserving injective homomorphisms divided
// by the label-preserving automorphism count — the independent
// reference.
func bruteLabeled(p *Pattern, g *Graph) uint64 {
	n := p.P.NumVertices()
	nv := g.G.NumVertices()
	assigned := make([]graph.VertexID, n)
	used := make([]bool, nv)
	var homs uint64
	var rec func(u int)
	rec = func(u int) {
		if u == n {
			homs++
			return
		}
		for v := 0; v < nv; v++ {
			if used[v] || g.Labels[v] != p.Labels[u] {
				continue
			}
			ok := true
			for w := 0; w < u && ok; w++ {
				if p.P.HasEdge(u, w) && !g.G.HasEdge(graph.VertexID(v), assigned[w]) {
					ok = false
				}
			}
			if !ok {
				continue
			}
			assigned[u] = graph.VertexID(v)
			used[v] = true
			rec(u + 1)
			used[v] = false
		}
	}
	rec(0)
	return homs / uint64(len(p.Automorphisms()))
}

// randomLabels assigns each vertex one of k labels.
func randomLabels(rng *rand.Rand, n, k int) []Label {
	out := make([]Label, n)
	for i := range out {
		out[i] = Label(rng.Intn(k))
	}
	return out
}

func mustGraph(t *testing.T, g *graph.Graph, labels []Label) *Graph {
	t.Helper()
	lg, err := NewGraph(g, labels)
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

func mustPattern(t *testing.T, p *pattern.Pattern, labels []Label) *Pattern {
	t.Helper()
	lp, err := NewPattern(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	return lp
}

func TestValidation(t *testing.T) {
	g := gen.Complete(4)
	if _, err := NewGraph(g, []Label{0, 1}); err == nil {
		t.Error("short label slice accepted")
	}
	if _, err := NewPattern(pattern.Triangle(), []Label{0}); err == nil {
		t.Error("short pattern labels accepted")
	}
}

func TestLabelPreservingAutomorphisms(t *testing.T) {
	// Triangle with labels (0,0,1): only the swap of the two 0-vertices
	// survives.
	p := mustPattern(t, pattern.Triangle(), []Label{0, 0, 1})
	if got := len(p.Automorphisms()); got != 2 {
		t.Fatalf("|Aut_L| = %d, want 2", got)
	}
	po := p.SymmetryBreaking()
	if pairs := po.Pairs(); len(pairs) != 1 || pairs[0] != [2]pattern.Vertex{0, 1} {
		t.Fatalf("partial order = %v, want [0<1]", po)
	}
	// All distinct labels: trivial group, no constraints.
	p2 := mustPattern(t, pattern.Triangle(), []Label{0, 1, 2})
	if len(p2.Automorphisms()) != 1 || !p2.SymmetryBreaking().Empty() {
		t.Fatal("distinct labels should kill all symmetry")
	}
}

func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pats := []*pattern.Pattern{pattern.Triangle(), pattern.P1(), pattern.P2(), pattern.Path(3), pattern.P4()}
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(3)
		base := gen.ErdosRenyi(25+rng.Intn(15), 60+rng.Intn(60), int64(trial))
		g := mustGraph(t, base, randomLabels(rng, base.NumVertices(), k))
		pat := pats[rng.Intn(len(pats))]
		p := mustPattern(t, pat, randomLabels(rng, pat.NumVertices(), k))
		want := bruteLabeled(p, g)
		res, err := Count(g, p, Options{Mode: plan.ModeLIGHT})
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != want {
			t.Fatalf("trial %d (%s, k=%d): got %d, want %d", trial, p.P.Name(), k, res.Matches, want)
		}
	}
}

func TestUniformLabelsEqualUnlabeled(t *testing.T) {
	// With a single label, labeled counting must equal the unlabeled
	// engine's count exactly.
	base := gen.BarabasiAlbert(120, 4, 5)
	for _, pat := range pattern.Catalog()[:4] {
		g := mustGraph(t, base, make([]Label, base.NumVertices()))
		p := mustPattern(t, pat, make([]Label, pat.NumVertices()))
		labeledRes, err := Count(g, p, Options{Mode: plan.ModeLIGHT})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteLabeled(p, g)
		if labeledRes.Matches != want {
			t.Fatalf("%s: labeled %d, brute %d", pat.Name(), labeledRes.Matches, want)
		}
	}
}

func TestAllModesAgreeLabeled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := gen.BarabasiAlbert(200, 4, 3)
	g := mustGraph(t, base, randomLabels(rng, base.NumVertices(), 3))
	p := mustPattern(t, pattern.P2(), []Label{0, 1, 0, 1})
	var want uint64
	for i, mode := range []plan.Mode{plan.ModeSE, plan.ModeLM, plan.ModeMSC, plan.ModeLIGHT} {
		res, err := Count(g, p, Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res.Matches
		} else if res.Matches != want {
			t.Fatalf("mode %s: %d != %d", mode.Name(), res.Matches, want)
		}
	}
}

func TestParallelLabeled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := gen.BarabasiAlbert(400, 5, 7)
	g := mustGraph(t, base, randomLabels(rng, base.NumVertices(), 2))
	p := mustPattern(t, pattern.Triangle(), []Label{0, 0, 1})
	seq, err := Count(g, p, Options{Mode: plan.ModeLIGHT})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Count(g, p, Options{Mode: plan.ModeLIGHT, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Matches != par.Matches {
		t.Fatalf("parallel %d != sequential %d", par.Matches, seq.Matches)
	}
}

func TestEnumerateLabeled(t *testing.T) {
	// Star with distinct hub label: matches are exactly hub + leaf pairs.
	base := gen.Star(5)
	labels := make([]Label, 6)
	// The hub has the highest degree, so after degree reordering it is
	// the last vertex.
	labels[5] = 1
	g := mustGraph(t, base, labels)
	p := mustPattern(t, pattern.Path(2), []Label{1, 0}) // hub-leaf edge
	count := 0
	res, err := Enumerate(g, p, Options{Mode: plan.ModeLIGHT}, func(m []graph.VertexID) bool {
		if g.Labels[m[0]] != 1 || g.Labels[m[1]] != 0 {
			t.Errorf("label violated in %v", m)
		}
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 5 || count != 5 {
		t.Fatalf("matches = %d, visited %d, want 5", res.Matches, count)
	}
}

func TestNLFFilterSoundAndEffective(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := gen.BarabasiAlbert(150, 4, 2)
	g := mustGraph(t, base, randomLabels(rng, base.NumVertices(), 4))
	p := mustPattern(t, pattern.Triangle(), []Label{0, 1, 2})
	filter := Filter(g, p)
	// Soundness: every vertex in a real match passes the filter.
	_, err := Enumerate(g, p, Options{Mode: plan.ModeLIGHT}, func(m []graph.VertexID) bool {
		for u, v := range m {
			if !filter(u, v) {
				t.Fatalf("filter rejected matched vertex %d→%d", u, v)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Effectiveness: it must reject vertices of the wrong label.
	for v := 0; v < base.NumVertices(); v++ {
		if g.Labels[v] != p.Labels[0] && filter(0, graph.VertexID(v)) {
			t.Fatalf("filter passed wrong-label vertex %d", v)
		}
	}
}

func TestVerticesWithLabel(t *testing.T) {
	g := mustGraph(t, gen.Complete(6), []Label{0, 1, 0, 1, 0, 1})
	if got := g.VerticesWithLabel(0); len(got) != 3 {
		t.Fatalf("label class 0 = %v", got)
	}
	if got := g.VerticesWithLabel(9); got != nil {
		t.Fatalf("missing label class = %v", got)
	}
}
