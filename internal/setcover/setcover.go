// Package setcover solves the minimum set cover instances arising in the
// paper's Algorithm 3: the universe is N+(u) (at most n-1 pattern
// vertices) and the collection has at most 2(n-1) sets, so the exact
// exponential search the paper uses (O(4^n) total across all vertices) is
// the right tool. A greedy solver is provided for comparison and as a
// safety valve for larger instances.
package setcover

import "math/bits"

// Exact returns the indices of a minimum sub-collection of sets whose
// union covers universe (a bitmask). Sets are bitmasks too. If the union
// of all sets does not cover the universe, ok is false.
//
// Ties are broken toward the earliest sets in the slice, so callers can
// order candidates by preference (Algorithm 3 prefers any optimal cover;
// our engines put larger, more-reusable sets first for determinism).
func Exact(universe uint32, sets []uint32) (cover []int, ok bool) {
	if universe == 0 {
		return nil, true
	}
	all := uint32(0)
	for _, s := range sets {
		all |= s
	}
	if all&universe != universe {
		return nil, false
	}
	// Iterative deepening over cover size: with ≤ ~30 sets and tiny
	// optimal sizes (≤ |universe| thanks to the singletons the caller
	// adds), this explores few nodes.
	for size := 1; size <= bits.OnesCount32(universe); size++ {
		if cover := search(universe, sets, size, nil); cover != nil {
			return cover, true
		}
	}
	return nil, false
}

// search looks for a cover of at most budget sets. It branches on the
// lowest uncovered universe element: some chosen set must contain it.
func search(remaining uint32, sets []uint32, budget int, chosen []int) []int {
	if remaining == 0 {
		out := make([]int, len(chosen))
		copy(out, chosen)
		return out
	}
	if budget == 0 {
		return nil
	}
	elem := remaining & -remaining
	for i, s := range sets {
		if s&elem == 0 {
			continue
		}
		if got := search(remaining&^s, sets, budget-1, append(chosen, i)); got != nil {
			return got
		}
	}
	return nil
}

// Greedy returns a greedy set cover: repeatedly pick the set covering the
// most uncovered elements (ties to the earliest set). ok is false when
// the universe cannot be covered. The result is within a ln(|U|) factor
// of optimal.
func Greedy(universe uint32, sets []uint32) (cover []int, ok bool) {
	remaining := universe
	for remaining != 0 {
		best, bestGain := -1, 0
		for i, s := range sets {
			gain := bits.OnesCount32(s & remaining)
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best == -1 {
			return nil, false
		}
		cover = append(cover, best)
		remaining &^= sets[best]
	}
	return cover, true
}
