package setcover

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func union(sets []uint32, idx []int) uint32 {
	var u uint32
	for _, i := range idx {
		u |= sets[i]
	}
	return u
}

func TestExactBasics(t *testing.T) {
	// Empty universe needs nothing.
	if c, ok := Exact(0, nil); !ok || len(c) != 0 {
		t.Fatalf("empty universe: %v %v", c, ok)
	}
	// Uncoverable.
	if _, ok := Exact(0b111, []uint32{0b001, 0b010}); ok {
		t.Fatal("coverable claim for uncoverable instance")
	}
	// The Example V.1 instance: U={u0,u2} (bits 0,2), S = {{u0},{u2},{u0,u2}}.
	cover, ok := Exact(0b101, []uint32{0b001, 0b100, 0b101})
	if !ok || len(cover) != 1 || cover[0] != 2 {
		t.Fatalf("Example V.1: cover = %v, want [2]", cover)
	}
}

func TestExactPrefersFewestSets(t *testing.T) {
	// Two singletons vs one doubleton: the doubleton wins.
	cover, ok := Exact(0b11, []uint32{0b01, 0b10, 0b11})
	if !ok || len(cover) != 1 {
		t.Fatalf("cover = %v", cover)
	}
	// Three elements; best is {0b110, 0b001} (2 sets) not three singletons.
	cover, ok = Exact(0b111, []uint32{0b001, 0b010, 0b100, 0b110})
	if !ok || len(cover) != 2 {
		t.Fatalf("cover = %v, want size 2", cover)
	}
	if union([]uint32{0b001, 0b010, 0b100, 0b110}, cover) != 0b111 {
		t.Fatal("cover does not cover universe")
	}
}

func TestGreedy(t *testing.T) {
	sets := []uint32{0b0011, 0b1100, 0b0110}
	cover, ok := Greedy(0b1111, sets)
	if !ok || union(sets, cover)&0b1111 != 0b1111 {
		t.Fatalf("greedy cover invalid: %v", cover)
	}
	if _, ok := Greedy(0b1000, []uint32{0b0111}); ok {
		t.Fatal("greedy covered the uncoverable")
	}
	if c, ok := Greedy(0, nil); !ok || len(c) != 0 {
		t.Fatal("greedy empty universe")
	}
}

// exactBrute finds the true optimum by trying all subsets of sets.
func exactBrute(universe uint32, sets []uint32) int {
	best := -1
	for mask := 0; mask < 1<<len(sets); mask++ {
		var u uint32
		for i := range sets {
			if mask&(1<<i) != 0 {
				u |= sets[i]
			}
		}
		if u&universe == universe {
			if best == -1 || bits.OnesCount(uint(mask)) < best {
				best = bits.OnesCount(uint(mask))
			}
		}
	}
	return best
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		nSets := 1 + rng.Intn(10)
		sets := make([]uint32, nSets)
		for i := range sets {
			sets[i] = uint32(rng.Intn(64)) // universe up to 6 elements
		}
		universe := uint32(rng.Intn(64))
		cover, ok := Exact(universe, sets)
		want := exactBrute(universe, sets)
		if (want == -1) == ok {
			t.Fatalf("trial %d: feasibility mismatch (brute %d, ok %v)", trial, want, ok)
		}
		if ok {
			if union(sets, cover)&universe != universe {
				t.Fatalf("trial %d: cover incomplete", trial)
			}
			covLen := len(cover)
			if universe == 0 {
				covLen = 0
			}
			if covLen != want && !(universe == 0 && want == 0) {
				t.Fatalf("trial %d: |cover| = %d, brute optimum %d", trial, covLen, want)
			}
		}
	}
}

// TestQuickGreedyFeasibility: whenever the union covers the universe,
// Greedy must find some cover and it must be valid.
func TestQuickGreedyFeasibility(t *testing.T) {
	f := func(raw []uint16, uni uint16) bool {
		sets := make([]uint32, 0, len(raw))
		var all uint32
		for _, r := range raw {
			sets = append(sets, uint32(r))
			all |= uint32(r)
		}
		universe := uint32(uni) & all // guaranteed coverable
		cover, ok := Greedy(universe, sets)
		if !ok {
			return false
		}
		return union(sets, cover)&universe == universe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExactNeverBeatenByGreedy: Exact is never larger than Greedy.
func TestQuickExactNeverBeatenByGreedy(t *testing.T) {
	f := func(raw []uint8, uni uint8) bool {
		if len(raw) > 8 {
			raw = raw[:8]
		}
		sets := make([]uint32, 0, len(raw))
		var all uint32
		for _, r := range raw {
			sets = append(sets, uint32(r))
			all |= uint32(r)
		}
		universe := uint32(uni) & all
		ec, eok := Exact(universe, sets)
		gc, gok := Greedy(universe, sets)
		if eok != gok {
			return false
		}
		if !eok {
			return true
		}
		return len(ec) <= len(gc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
