package arena

import "testing"

func TestLimiterNilUnlimited(t *testing.T) {
	var l *Limiter
	if l != NewLimiter(0, nil) {
		t.Fatalf("NewLimiter(0, nil) should be nil")
	}
	if !l.Reserve(1 << 40) {
		t.Fatalf("nil limiter denied a reservation")
	}
	l.Release(1 << 40)
	l.ReleaseAll()
	if l.Tight() || l.Used() != 0 || l.Limit() != 0 || l.Denials() != 0 || l.TightGrows() != 0 {
		t.Fatalf("nil limiter reported state")
	}
	if l.Headroom() >= 0 {
		t.Fatalf("nil limiter headroom = %d, want negative (unlimited)", l.Headroom())
	}
}

func TestLimiterReserveDeny(t *testing.T) {
	l := NewLimiter(100, nil)
	if !l.Reserve(60) || !l.Reserve(40) {
		t.Fatalf("reservations within limit denied")
	}
	if l.Reserve(1) {
		t.Fatalf("reservation past limit granted")
	}
	if got := l.Denials(); got != 1 {
		t.Fatalf("Denials = %d, want 1", got)
	}
	if got := l.Used(); got != 100 {
		t.Fatalf("Used = %d, want 100", got)
	}
	l.Release(50)
	if !l.Reserve(50) {
		t.Fatalf("reservation after release denied")
	}
}

func TestLimiterParentRollback(t *testing.T) {
	parent := NewLimiter(100, nil)
	child := NewLimiter(1000, parent)
	if !child.Reserve(80) {
		t.Fatalf("first reservation denied")
	}
	// Child has room, parent does not: must fail and roll back the
	// child's accounting.
	if child.Reserve(30) {
		t.Fatalf("reservation granted past parent limit")
	}
	if got := child.Used(); got != 80 {
		t.Fatalf("child Used = %d after rollback, want 80", got)
	}
	if got := parent.Used(); got != 80 {
		t.Fatalf("parent Used = %d after rollback, want 80", got)
	}
	child.ReleaseAll()
	if parent.Used() != 0 || child.Used() != 0 {
		t.Fatalf("ReleaseAll left used = parent %d child %d", parent.Used(), child.Used())
	}
}

func TestLimiterTightThreshold(t *testing.T) {
	l := NewLimiter(100, nil)
	l.Reserve(74)
	if l.Tight() {
		t.Fatalf("tight below 3/4")
	}
	l.Reserve(1)
	if !l.Tight() {
		t.Fatalf("not tight at 3/4")
	}
	// Tightness propagates from any level of the chain.
	child := NewLimiter(0, l)
	if !child.Tight() {
		t.Fatalf("child not tight while parent is")
	}
}

func TestLimiterHeadroom(t *testing.T) {
	parent := NewLimiter(100, nil)
	child := NewLimiter(50, parent)
	parent.Reserve(80)
	if got := child.Headroom(); got != 20 {
		t.Fatalf("Headroom = %d, want 20 (parent is tighter)", got)
	}
	if !child.Reserve(15) {
		t.Fatalf("reservation within both ceilings denied")
	}
	if got := child.Headroom(); got != 5 {
		t.Fatalf("Headroom = %d, want 5 (parent has 5 left)", got)
	}
}

// TestBudgetedArenaDegrades walks the first rung of the degradation
// ladder: past the tight threshold, grow stops rounding requests up to
// chunkElems and the exact-size slab is observable via TightGrows.
func TestBudgetedArenaDegrades(t *testing.T) {
	// Budget fits exactly one full chunk slab plus a little; after the
	// first grow the limiter is > 3/4 full, so the next grow must be
	// exact-size.
	budget := int64(chunkElems)*4 + 1024
	lim := NewLimiter(budget, nil)
	a := NewBudgeted(lim)
	if b := a.Alloc(16); len(b) != 16 {
		t.Fatalf("first Alloc failed under ample budget")
	}
	if lim.Used() != int64(chunkElems)*4 {
		t.Fatalf("first slab not rounded to chunk: used %d", lim.Used())
	}
	// Fill the first slab, then force a grow: with the limiter past 3/4
	// the new slab must be exact-size (800 B fits the 1 KiB remnant; a
	// rounded 256 KiB slab would not).
	if b := a.Alloc(chunkElems - 16); len(b) != chunkElems-16 {
		t.Fatalf("slab-filling Alloc failed")
	}
	if b := a.Alloc(200); len(b) != 200 {
		t.Fatalf("tight-mode Alloc failed: %v", b)
	}
	if got := lim.TightGrows(); got == 0 {
		t.Fatalf("TightGrows = 0, want > 0 after tight-mode grow")
	}
}

// TestBudgetedArenaDenies is the hard stop: an exhausted budget makes
// Alloc return nil rather than allocate past the ceiling.
func TestBudgetedArenaDenies(t *testing.T) {
	lim := NewLimiter(64*4, nil)
	a := NewBudgeted(lim)
	if b := a.Alloc(64); len(b) != 64 {
		t.Fatalf("Alloc within budget failed")
	}
	if b := a.Alloc(64); b != nil {
		t.Fatalf("Alloc past budget returned %d elems, want nil", len(b))
	}
	if lim.Denials() == 0 {
		t.Fatalf("denial not recorded")
	}
	// The arena remains usable for allocations that fit what's left.
	a.Reset()
	if b := a.Alloc(32); len(b) != 32 {
		t.Fatalf("Alloc after Reset failed")
	}
}

func TestEstimateBytes(t *testing.T) {
	cases := []struct {
		allocs, each int
		tight        bool
	}{
		{allocs: 5, each: 100, tight: false},
		{allocs: 5, each: 100, tight: true},
		{allocs: 3000, each: 50, tight: false},
		{allocs: 2, each: chunkElems + 1, tight: false},
		{allocs: 7, each: chunkElems / 2, tight: false},
	}
	for _, c := range cases {
		var lim *Limiter
		if c.tight {
			// A limiter held at 3/4 of a huge ceiling keeps Tight() true
			// for every grow while leaving ample headroom to reserve.
			lim = NewLimiter(1<<40, nil)
			lim.Reserve((1 << 40) * 3 / 4)
		}
		a := NewBudgeted(lim)
		for i := 0; i < c.allocs; i++ {
			if b := a.Alloc(c.each); b == nil {
				t.Fatalf("%+v: Alloc %d denied", c, i)
			}
		}
		want := a.Bytes()
		if got := EstimateBytes(c.allocs, c.each, c.tight); got != want {
			t.Errorf("EstimateBytes(%d, %d, %v) = %d, actual arena bytes %d",
				c.allocs, c.each, c.tight, got, want)
		}
	}
	if got := EstimateBytes(0, 10, false); got != 0 {
		t.Errorf("EstimateBytes(0, 10) = %d, want 0", got)
	}
}
