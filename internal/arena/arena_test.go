package arena

import (
	"testing"

	"light/internal/graph"
)

func TestAllocBasics(t *testing.T) {
	a := New()
	if got := a.Alloc(0); got != nil {
		t.Fatalf("Alloc(0) = %v, want nil", got)
	}
	if a.Bytes() != 0 {
		t.Fatalf("empty arena reports %d bytes", a.Bytes())
	}
	b1 := a.Alloc(10)
	b2 := a.Alloc(20)
	if len(b1) != 10 || cap(b1) != 10 || len(b2) != 20 || cap(b2) != 20 {
		t.Fatalf("Alloc returned len/cap %d/%d and %d/%d", len(b1), cap(b1), len(b2), cap(b2))
	}
	// Distinct allocations must not overlap: writes to one are invisible
	// in the other.
	for i := range b1 {
		b1[i] = 1
	}
	for i := range b2 {
		b2[i] = 2
	}
	for i, v := range b1 {
		if v != 1 {
			t.Fatalf("b1[%d] corrupted to %d by a later allocation", i, v)
		}
	}
	if a.Bytes() != int64(chunkElems)*4 {
		t.Fatalf("arena reports %d bytes, want one chunk (%d)", a.Bytes(), int64(chunkElems)*4)
	}
}

// TestCapacityClipped pins the three-index slice: appending past an
// allocation reallocates instead of bleeding into its neighbor.
func TestCapacityClipped(t *testing.T) {
	a := New()
	b1 := a.Alloc(4)
	b2 := a.Alloc(4)
	b2[0] = 7
	b1 = append(b1, 99)
	if b2[0] != 7 {
		t.Fatalf("append past b1 overwrote b2[0] = %d", b2[0])
	}
	_ = b1
}

func TestOversizedAlloc(t *testing.T) {
	a := New()
	big := a.Alloc(chunkElems * 3)
	if len(big) != chunkElems*3 {
		t.Fatalf("oversized Alloc returned %d elements", len(big))
	}
	if a.Bytes() != int64(chunkElems)*3*4 {
		t.Fatalf("arena reports %d bytes after oversized alloc", a.Bytes())
	}
	// The oversized slab is reusable after Reset like any other.
	a.Reset()
	again := a.Alloc(chunkElems * 2)
	if len(again) != chunkElems*2 {
		t.Fatalf("post-reset Alloc returned %d elements", len(again))
	}
	if a.Bytes() != int64(chunkElems)*3*4 {
		t.Fatalf("reset grew the arena to %d bytes", a.Bytes())
	}
}

// TestResetReuse is the steady-state contract: once a frame's footprint
// has been served, the same sequence of allocations after Reset reuses
// the slabs and performs zero heap allocations.
func TestResetReuse(t *testing.T) {
	a := New()
	sizes := []int{100, 5000, 1, chunkElems, 37}
	frame := func() {
		for _, n := range sizes {
			buf := a.Alloc(n)
			if len(buf) != n {
				t.Fatalf("Alloc(%d) returned %d elements", n, len(buf))
			}
		}
		a.Reset()
	}
	frame() // warm-up growth
	before := a.Bytes()
	if n := testing.AllocsPerRun(10, frame); n != 0 {
		t.Fatalf("steady-state frame allocates %v per run", n)
	}
	if a.Bytes() != before {
		t.Fatalf("steady-state frames grew the arena %d -> %d bytes", before, a.Bytes())
	}
}

// TestSpillToSecondSlab forces an allocation that does not fit the
// remaining space of the first slab and checks the cursor walks to a
// fresh slab without clobbering live data.
func TestSpillToSecondSlab(t *testing.T) {
	a := New()
	first := a.Alloc(chunkElems - 5)
	first[0] = 11
	second := a.Alloc(100) // does not fit the 5 remaining elements
	second[0] = 22
	if first[0] != 11 {
		t.Fatalf("spill clobbered the first slab: %d", first[0])
	}
	if len(a.slabs) != 2 {
		t.Fatalf("expected 2 slabs, have %d", len(a.slabs))
	}
	// After Reset the same sequence lands in the same slabs, no growth.
	a.Reset()
	_ = a.Alloc(chunkElems - 5)
	_ = a.Alloc(100)
	if len(a.slabs) != 2 {
		t.Fatalf("reset replay grew to %d slabs", len(a.slabs))
	}
}

func TestZeroValueUsable(t *testing.T) {
	var a Arena
	buf := a.Alloc(8)
	buf[7] = graph.VertexID(3)
	if len(buf) != 8 {
		t.Fatalf("zero-value arena Alloc returned %d elements", len(buf))
	}
}
