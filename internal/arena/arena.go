// Package arena provides a per-worker bump allocator for candidate-set
// buffers: chunked, reusable slabs of vertex ids that replace the
// engine's former per-enumerator make([]VertexID, dmax) × n
// allocations. A worker allocates its frame-local buffers from the
// arena, then Resets it between frames — after a short warm-up in which
// the slabs grow to the run's peak footprint, the steady state performs
// zero heap allocations (pinned by AllocsPerRun in the engine tests).
//
// An Arena is not safe for concurrent use; the parallel scheduler gives
// every worker its own.
package arena

import "light/internal/graph"

// chunkElems is the minimum slab size in vertex ids (256 KiB per slab —
// large enough that typical patterns fit n·dmax buffers in one or two
// slabs, small enough not to dwarf the CSR arrays on toy graphs).
const chunkElems = 64 << 10

// Arena is a bump allocator over a list of slabs. The zero value is
// ready to use.
type Arena struct {
	slabs [][]graph.VertexID
	slab  int   // slab currently being carved
	off   int   // next free element in slabs[slab]
	bytes int64 // total slab footprint
	lim   *Limiter
}

// New returns an empty arena with an unlimited budget.
func New() *Arena { return &Arena{} }

// NewBudgeted returns an empty arena whose slab growth is accounted
// against lim: under soft pressure (Limiter.Tight) slabs shrink to the
// exact requested size, and when a reservation is denied Alloc returns
// nil — the caller's signal to hard-stop with a memory-budget error. A
// nil limiter is an unlimited budget, identical to New.
func NewBudgeted(lim *Limiter) *Arena { return &Arena{lim: lim} }

// Alloc returns a full-capacity slice of n vertex ids carved from the
// current slab. Contents are unspecified (previous-frame data may
// remain); callers treat the buffer as write-before-read scratch. The
// returned slice has its capacity clipped to n, so appends past it can
// never bleed into a neighboring allocation.
//
// On a budgeted arena (NewBudgeted) Alloc returns nil for n > 0 when
// the limiter denies the slab reservation; unbudgeted arenas never do.
//
//light:hotpath
func (a *Arena) Alloc(n int) []graph.VertexID {
	if n == 0 {
		return nil
	}
	for a.slab < len(a.slabs) {
		s := a.slabs[a.slab]
		if a.off+n <= len(s) {
			out := s[a.off : a.off+n : a.off+n]
			a.off += n
			return out
		}
		a.slab++
		a.off = 0
	}
	return a.grow(n)
}

// grow appends a fresh slab and serves the allocation from it. This is
// the warm-up path: it runs only while the arena has not yet reached
// the run's peak per-frame footprint; once it has, Reset rewinds the
// cursor and Alloc never reaches grow again.
//
//lightvet:ignore hotpath -- slab growth is the acknowledged-cold warm-up path; steady-state Alloc stays in the bump loop above
func (a *Arena) grow(n int) []graph.VertexID {
	size := n
	if size < chunkElems {
		if a.lim.Tight() {
			// Soft pressure: stop rounding requests up to the chunk
			// size, trading slab slack for staying under the budget.
			a.lim.noteTight()
		} else {
			size = chunkElems
		}
	}
	if !a.lim.Reserve(int64(size) * 4) {
		// A rounded slab did not fit; retry at exactly the requested
		// size before giving up — the last step down the ladder short
		// of a hard stop.
		if size == n || !a.lim.Reserve(int64(n)*4) {
			return nil
		}
		size = n
		a.lim.noteTight()
	}
	s := make([]graph.VertexID, size)
	a.slabs = append(a.slabs, s)
	a.slab = len(a.slabs) - 1
	a.off = n
	a.bytes += int64(size) * 4
	return s[0:n:n]
}

// EstimateBytes predicts the slab footprint an arena reaches after
// `allocs` allocations of `each` elements — the engine's worst case is
// one candidate buffer per pattern vertex plus one scratch buffer,
// each d_max elements. tight selects the exact-size growth mode the
// arena switches to under budget pressure. The prediction replays the
// grow logic, so the admission layer can size worker budgets without
// allocating anything.
func EstimateBytes(allocs, each int, tight bool) int64 {
	if allocs <= 0 || each <= 0 {
		return 0
	}
	if tight || each >= chunkElems {
		return int64(allocs) * int64(each) * 4
	}
	perSlab := chunkElems / each
	slabs := (allocs + perSlab - 1) / perSlab
	return int64(slabs) * int64(chunkElems) * 4
}

// Reset rewinds the arena so the next Alloc reuses the first slab.
// Previously returned slices become invalid. Slab memory is retained.
//
//light:hotpath
func (a *Arena) Reset() {
	a.slab = 0
	a.off = 0
}

// Bytes returns the total slab footprint in bytes (the run-report
// ArenaBytes metric).
func (a *Arena) Bytes() int64 { return a.bytes }
