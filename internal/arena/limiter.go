package arena

import "sync/atomic"

// tightNum/tightDen set the soft-pressure threshold: once a limiter in
// the chain is more than 3/4 full, arenas stop rounding slab requests
// up to the chunk size and allocate exactly what was asked for — the
// first rung of the memory-degradation ladder ("shrink per-worker
// arenas"), traded before any allocation is denied outright.
const (
	tightNum = 3
	tightDen = 4
)

// Limiter is a byte budget shared by one or more arenas. Reservations
// are accounted against this limiter and, transitively, against its
// parent — so a per-run limiter can nest under a process-wide one (the
// admission Governor's) and both ceilings hold at once. All methods
// are safe for concurrent use and valid on a nil receiver (a nil
// *Limiter is an unlimited budget that records nothing).
type Limiter struct {
	limit  int64 // 0 = no ceiling at this level (parent may still cap)
	parent *Limiter

	used       atomic.Int64
	denials    atomic.Uint64
	tightGrows atomic.Uint64
}

// NewLimiter returns a limiter with the given byte ceiling chained
// under parent. A non-positive limit means "no ceiling at this level";
// if there is also no parent the budget is unlimited and NewLimiter
// returns nil, which every method accepts.
func NewLimiter(limit int64, parent *Limiter) *Limiter {
	if limit <= 0 {
		if parent == nil {
			return nil
		}
		limit = 0
	}
	return &Limiter{limit: limit, parent: parent}
}

// Reserve accounts n bytes against the limiter and its parents,
// failing without side effects when any ceiling in the chain would be
// exceeded. A nil receiver always succeeds.
func (l *Limiter) Reserve(n int64) bool {
	if l == nil || n <= 0 {
		return true
	}
	for {
		u := l.used.Load()
		if l.limit > 0 && u+n > l.limit {
			l.denials.Add(1)
			return false
		}
		if l.used.CompareAndSwap(u, u+n) {
			break
		}
	}
	if l.parent != nil && !l.parent.Reserve(n) {
		l.used.Add(-n)
		l.denials.Add(1)
		return false
	}
	return true
}

// Release returns n bytes to the limiter and its parents.
func (l *Limiter) Release(n int64) {
	if l == nil || n <= 0 {
		return
	}
	l.used.Add(-n)
	if l.parent != nil {
		l.parent.Release(n)
	}
}

// ReleaseAll returns every byte this limiter holds to its parents and
// zeroes its own accounting — the run-teardown path, where all arenas
// charged to the limiter die together.
func (l *Limiter) ReleaseAll() {
	if l == nil {
		return
	}
	u := l.used.Swap(0)
	if u > 0 && l.parent != nil {
		l.parent.Release(u)
	}
}

// Tight reports whether any limiter in the chain is past the
// soft-pressure threshold (3/4 full), signalling arenas to stop
// rounding slab requests up. False on a nil receiver.
func (l *Limiter) Tight() bool {
	for ; l != nil; l = l.parent {
		if l.limit > 0 && l.used.Load()*tightDen >= l.limit*tightNum {
			return true
		}
	}
	return false
}

// noteTight records one exact-size (unrounded) slab grow — the
// observable trace of the first degradation rung.
func (l *Limiter) noteTight() {
	if l != nil {
		l.tightGrows.Add(1)
	}
}

// Used returns the bytes currently reserved at this level.
func (l *Limiter) Used() int64 {
	if l == nil {
		return 0
	}
	return l.used.Load()
}

// Limit returns this level's ceiling (0 = none).
func (l *Limiter) Limit() int64 {
	if l == nil {
		return 0
	}
	return l.limit
}

// Headroom returns the tightest remaining budget across the chain, or
// a negative value when the budget is unlimited end to end.
func (l *Limiter) Headroom() int64 {
	head := int64(-1)
	for ; l != nil; l = l.parent {
		if l.limit <= 0 {
			continue
		}
		h := l.limit - l.used.Load()
		if h < 0 {
			h = 0
		}
		if head < 0 || h < head {
			head = h
		}
	}
	return head
}

// Denials returns how many reservations the limiter refused.
func (l *Limiter) Denials() uint64 {
	if l == nil {
		return 0
	}
	return l.denials.Load()
}

// TightGrows returns how many slab grows were forced to exact size by
// budget pressure — nonzero means the arena-shrink degradation rung
// engaged.
func (l *Limiter) TightGrows() uint64 {
	if l == nil {
		return 0
	}
	return l.tightGrows.Load()
}
