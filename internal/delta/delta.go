// Package delta is the copy-on-write mutation layer over the immutable
// CSR data graph: an Overlay holds a batch of edge insertions and
// deletions as a per-vertex sorted-list overlay, presenting the same
// read interface as graph.Graph (Neighbors/Degree/HasEdge) so the
// enumeration engine can run against a mutated view without rebuilding
// the CSR. Overlays are immutable once built — Apply produces a new
// Overlay sharing untouched state with its predecessor (copy-on-write),
// so snapshots pinned by in-flight queries never observe a mutation.
// Compact folds an overlay back into a fresh CSR graph with stable
// vertex IDs. See DESIGN.md §18.
//
// Correctness note: mutated views are generally no longer degree-ordered
// (a "LIGHT ordered graph"). That is safe — the symmetry-breaking
// machinery requires only a fixed total order on vertex IDs, which any
// labeling provides; degree order is a performance heuristic. Hub
// bitmaps, however, are built from the base CSR, so the engine must not
// probe the bitmap of a vertex whose neighbor list the overlay changed
// (HubBitmap returns nil for touched vertices).
package delta

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"light/internal/graph"
)

// Edge is an undirected edge in canonical form (U < V).
type Edge struct{ U, V graph.VertexID }

// Canon returns e with endpoints swapped into canonical U < V order.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Overlay is an immutable copy-on-write view of base plus a batch of
// edge insertions and deletions. Touched vertices carry complete merged
// sorted neighbor lists; untouched vertices read through to the base
// CSR with one bitset test. All read methods are safe for concurrent
// use.
type Overlay struct {
	base *graph.Graph

	// lists holds the complete merged sorted neighbor list of every
	// touched vertex. Hot-path reads index it directly (map reads are
	// allocation-free); untouched vertices never reach it.
	lists map[graph.VertexID][]graph.VertexID
	// touched has one bit per overlay vertex; set for every vertex whose
	// list differs from base — including every vertex at or beyond the
	// base vertex count, which has no base list at all.
	touched []uint64

	n         int   // overlay vertex count (>= base count)
	m         int64 // overlay undirected edge count
	maxDegree int   // upper bound on the overlay max degree (see MaxDegree)

	// added and removed are the cumulative edge deltas relative to base
	// (canonical, sorted): applying "add added, remove removed" to base
	// reproduces this view exactly, and the two sets are disjoint.
	added   []Edge
	removed []Edge

	fpOnce sync.Once
	fp     uint64
}

// Base returns the CSR graph under the overlay.
func (o *Overlay) Base() *graph.Graph { return o.base }

// NumVertices returns the overlay's vertex count (the base count plus
// any vertices introduced by inserted edges).
func (o *Overlay) NumVertices() int { return o.n }

// NumEdges returns the overlay's undirected edge count.
func (o *Overlay) NumEdges() int64 { return o.m }

// Added returns the cumulative inserted edges relative to base
// (canonical, sorted). The slice is shared; do not modify.
func (o *Overlay) Added() []Edge { return o.added }

// Removed returns the cumulative deleted edges relative to base
// (canonical, sorted). The slice is shared; do not modify.
func (o *Overlay) Removed() []Edge { return o.removed }

// DeltaEdges returns the total number of pending edge deltas
// (insertions plus deletions) relative to base.
func (o *Overlay) DeltaEdges() int { return len(o.added) + len(o.removed) }

// Empty reports whether the overlay view is identical to base.
func (o *Overlay) Empty() bool { return o.DeltaEdges() == 0 && o.n == o.base.NumVertices() }

// MaxDegree returns an upper bound on the overlay's maximum vertex
// degree: the max of the base bound and every touched vertex's new
// degree. It can exceed the true maximum when the base's highest-degree
// vertex lost edges; callers use it only to size candidate buffers, so
// an upper bound is always safe.
func (o *Overlay) MaxDegree() int { return o.maxDegree }

// Touched reports whether v's neighbor list differs from the base CSR
// (always true for vertices the base does not have). The engine uses it
// to suppress stale hub-bitmap probes.
//
//light:hotpath
func (o *Overlay) Touched(v graph.VertexID) bool {
	return o.touched[v>>6]&(uint64(1)<<(v&63)) != 0
}

// Neighbors returns v's sorted neighbor list in the overlay view. The
// returned slice aliases overlay or base storage; do not modify.
//
//light:hotpath
func (o *Overlay) Neighbors(v graph.VertexID) []graph.VertexID {
	if o.touched[v>>6]&(uint64(1)<<(v&63)) != 0 {
		return o.lists[v]
	}
	return o.base.Neighbors(v)
}

// Degree returns v's degree in the overlay view.
//
//light:hotpath
func (o *Overlay) Degree(v graph.VertexID) int {
	if o.touched[v>>6]&(uint64(1)<<(v&63)) != 0 {
		return len(o.lists[v])
	}
	return o.base.Degree(v)
}

// HasEdge reports whether (u, v) exists in the overlay view, by binary
// search on the smaller endpoint list.
func (o *Overlay) HasEdge(u, v graph.VertexID) bool {
	if int64(u) >= int64(o.n) || int64(v) >= int64(o.n) || u == v {
		return false
	}
	if o.Degree(u) > o.Degree(v) {
		u, v = v, u
	}
	ns := o.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// Fingerprint returns the overlay's composed content hash: the base
// fingerprint extended with the cumulative added and removed edge sets.
// Equal fingerprints mean the same base snapshot with the same pending
// deltas. Note that a compacted graph hashes its CSR content instead,
// so an overlay and its compaction have different fingerprints even
// though their adjacency agrees — fingerprints identify snapshots, not
// abstract graphs.
func (o *Overlay) Fingerprint() uint64 {
	o.fpOnce.Do(func() {
		h := fnv.New64a()
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], o.base.Fingerprint())
		h.Write(b[:]) //lightvet:ignore hygiene -- fnv.Write cannot fail
		binary.LittleEndian.PutUint64(b[:], uint64(o.n))
		h.Write(b[:]) //lightvet:ignore hygiene -- fnv.Write cannot fail
		writeEdges := func(tag byte, es []Edge) {
			b[0] = tag
			h.Write(b[:1]) //lightvet:ignore hygiene -- fnv.Write cannot fail
			for _, e := range es {
				binary.LittleEndian.PutUint32(b[:4], e.U)
				binary.LittleEndian.PutUint32(b[4:], e.V)
				h.Write(b[:]) //lightvet:ignore hygiene -- fnv.Write cannot fail
			}
		}
		writeEdges('+', o.added)
		writeEdges('-', o.removed)
		o.fp = h.Sum64()
	})
	return o.fp
}

// MemoryBytes returns the approximate footprint of the overlay's own
// structures (base CSR excluded).
func (o *Overlay) MemoryBytes() int64 {
	var lists int64
	for _, ns := range o.lists {
		lists += int64(len(ns)) * 4
	}
	return lists + int64(len(o.touched))*8 + int64(len(o.added)+len(o.removed))*8
}

// edgeKey packs a canonical edge into a comparable uint64.
func edgeKey(e Edge) uint64 { return uint64(e.U)<<32 | uint64(e.V) }

// canonicalize dedups, canonicalizes, and sorts a raw edge batch,
// dropping self-loops. Returns an error on nothing — invalid vertex
// IDs cannot exist (VertexID is the full uint32 range).
func canonicalize(edges []Edge) []Edge {
	out := make([]Edge, 0, len(edges))
	seen := make(map[uint64]struct{}, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		e = e.Canon()
		k := edgeKey(e)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, e)
	}
	sortEdges(out)
	return out
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}

// Apply builds a new overlay over base that extends prev (nil for a
// clean base) with the given insertions and deletions. Insertions of
// edges already present and deletions of absent edges are ignored;
// self-loops and duplicate batch entries are dropped; an edge both
// inserted and deleted in one batch is deleted (deletions win, matching
// last-writer batch semantics). prev is never modified — queries
// holding it keep an unchanged view. Inserted edges may reference
// vertices beyond the current count; the overlay grows to fit.
func Apply(base *graph.Graph, prev *Overlay, add, remove []Edge) (*Overlay, error) {
	if base == nil {
		return nil, fmt.Errorf("delta: Apply requires a base graph")
	}
	if prev != nil && prev.base != base {
		return nil, fmt.Errorf("delta: overlay belongs to a different base snapshot")
	}
	add = canonicalize(add)
	remove = canonicalize(remove)
	// Deletions win within one batch: drop the intersection from add.
	if len(add) > 0 && len(remove) > 0 {
		rm := make(map[uint64]struct{}, len(remove))
		for _, e := range remove {
			rm[edgeKey(e)] = struct{}{}
		}
		kept := add[:0]
		for _, e := range add {
			if _, dead := rm[edgeKey(e)]; !dead {
				kept = append(kept, e)
			}
		}
		add = kept
	}

	baseN := base.NumVertices()
	prevN := baseN
	if prev != nil {
		prevN = prev.n
	}
	prevView := viewOf(base, prev)

	// Partition the batch into effective insertions and deletions
	// against the previous view, grouped by endpoint.
	perVertex := make(map[graph.VertexID]vertexPatch)
	var addedCount, removedCount int
	n := prevN
	for _, e := range add {
		if prevView.hasEdge(e.U, e.V, n) {
			continue
		}
		addedCount++
		p := perVertex[e.U]
		p.add = append(p.add, e.V)
		perVertex[e.U] = p
		p = perVertex[e.V]
		p.add = append(p.add, e.U)
		perVertex[e.V] = p
		if int(e.V) >= n {
			n = int(e.V) + 1
		}
	}
	for _, e := range remove {
		if !prevView.hasEdge(e.U, e.V, n) {
			continue
		}
		removedCount++
		p := perVertex[e.U]
		p.del = append(p.del, e.V)
		perVertex[e.U] = p
		p = perVertex[e.V]
		p.del = append(p.del, e.U)
		perVertex[e.V] = p
	}
	if addedCount == 0 && removedCount == 0 && n == prevN {
		// Complete no-op: share prev outright (or report a clean base).
		return prev, nil
	}

	o := &Overlay{
		base:    base,
		lists:   make(map[graph.VertexID][]graph.VertexID, len(perVertex)+8),
		touched: make([]uint64, (n+63)/64),
		n:       n,
	}
	// Copy-on-write: share prev's merged lists for vertices this batch
	// does not touch; rebuild the rest below.
	if prev != nil {
		copy(o.touched, prev.touched)
		for v, ns := range prev.lists {
			o.lists[v] = ns
		}
	}
	// Vertices introduced by this batch (or padding up to the new max
	// endpoint) have no base list: mark them touched so reads go to the
	// map, where a missing entry is an empty list.
	for v := prevN; v < n; v++ {
		o.touched[v>>6] |= uint64(1) << (uint(v) & 63)
	}
	for v, p := range perVertex {
		old := prevView.neighbors(v, prevN)
		merged := mergePatch(old, p.add, p.del)
		o.lists[v] = merged
		o.touched[v>>6] |= uint64(1) << (v & 63)
	}

	// Cumulative added/removed relative to base: fold this batch's
	// effective changes into prev's sets. An effective insertion either
	// cancels a base-relative removal or records a base-relative
	// addition, and symmetrically for deletions.
	prevAdded, prevRemoved := map[uint64]Edge{}, map[uint64]Edge{}
	if prev != nil {
		for _, e := range prev.added {
			prevAdded[edgeKey(e)] = e
		}
		for _, e := range prev.removed {
			prevRemoved[edgeKey(e)] = e
		}
	}
	for _, e := range add {
		if !prevView.hasEdge(e.U, e.V, prevN) || int(e.V) >= prevN {
			k := edgeKey(e)
			if _, wasRemoved := prevRemoved[k]; wasRemoved {
				delete(prevRemoved, k)
			} else {
				prevAdded[k] = e
			}
		}
	}
	for _, e := range remove {
		if prevView.hasEdge(e.U, e.V, prevN) {
			k := edgeKey(e)
			if _, wasAdded := prevAdded[k]; wasAdded {
				delete(prevAdded, k)
			} else {
				prevRemoved[k] = e
			}
		}
	}
	o.added = edgeSetSlice(prevAdded)
	o.removed = edgeSetSlice(prevRemoved)
	o.m = base.NumEdges() + int64(len(o.added)) - int64(len(o.removed))

	// Conservative max-degree bound for candidate-buffer sizing.
	o.maxDegree = base.MaxDegree()
	for _, ns := range o.lists {
		if len(ns) > o.maxDegree {
			o.maxDegree = len(ns)
		}
	}
	return o, nil
}

type vertexPatch struct {
	add, del []graph.VertexID
}

// mergePatch returns sorted old with add merged in and del removed.
// add and del are disjoint from/subsets of old respectively by
// construction in Apply, but the merge tolerates duplicates anyway.
func mergePatch(old, add, del []graph.VertexID) []graph.VertexID {
	sortIDs(add)
	delSet := make(map[graph.VertexID]struct{}, len(del))
	for _, v := range del {
		delSet[v] = struct{}{}
	}
	out := make([]graph.VertexID, 0, len(old)+len(add))
	i, j := 0, 0
	for i < len(old) || j < len(add) {
		var v graph.VertexID
		switch {
		case i == len(old):
			v = add[j]
			j++
		case j == len(add):
			v = old[i]
			i++
		case old[i] < add[j]:
			v = old[i]
			i++
		case old[i] > add[j]:
			v = add[j]
			j++
		default: // duplicate across old and add
			v = old[i]
			i++
			j++
		}
		if _, dead := delSet[v]; dead {
			continue
		}
		if n := len(out); n > 0 && out[n-1] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

func sortIDs(s []graph.VertexID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func edgeSetSlice(m map[uint64]Edge) []Edge {
	out := make([]Edge, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sortEdges(out)
	return out
}

// view reads a base-plus-optional-overlay adjacency uniformly, treating
// vertices beyond the view's count as isolated.
type view struct {
	base *graph.Graph
	ov   *Overlay
}

func viewOf(base *graph.Graph, ov *Overlay) view { return view{base: base, ov: ov} }

func (w view) neighbors(v graph.VertexID, n int) []graph.VertexID {
	if int64(v) >= int64(n) {
		return nil
	}
	if w.ov != nil && int64(v) < int64(w.ov.n) {
		return w.ov.Neighbors(v)
	}
	if int(v) >= w.base.NumVertices() {
		return nil
	}
	return w.base.Neighbors(v)
}

func (w view) hasEdge(u, v graph.VertexID, n int) bool {
	if int64(u) >= int64(n) || int64(v) >= int64(n) {
		return false
	}
	if w.ov != nil {
		return w.ov.HasEdge(u, v)
	}
	if int(u) >= w.base.NumVertices() || int(v) >= w.base.NumVertices() {
		return false
	}
	return w.base.HasEdge(u, v)
}

// Compact folds the overlay into a fresh CSR graph with identical
// adjacency and — crucially — identical vertex IDs: no degree
// reordering, so match results, pinned snapshots, and caller-held
// vertex IDs stay comparable across compaction. The new graph computes
// its own content fingerprint and auto-builds its own hub index.
func Compact(o *Overlay) (*graph.Graph, error) {
	if o == nil {
		return nil, fmt.Errorf("delta: Compact requires an overlay")
	}
	offsets := make([]int64, o.n+1)
	var total int64
	for v := 0; v < o.n; v++ {
		total += int64(o.Degree(graph.VertexID(v)))
	}
	adj := make([]graph.VertexID, 0, total)
	for v := 0; v < o.n; v++ {
		offsets[v] = int64(len(adj))
		adj = append(adj, o.Neighbors(graph.VertexID(v))...)
	}
	offsets[o.n] = int64(len(adj))
	return graph.FromCSR(offsets, adj)
}

// Diff returns the edge sets that turn the (fromBase, fromOv) view into
// the (toBase, toOv) view: added edges present only in "to", removed
// edges present only in "from" (both canonical, sorted). When the two
// views share one base graph the diff is computed from the cumulative
// overlay sets in O(delta); across a compaction it falls back to a full
// adjacency sweep.
func Diff(fromBase *graph.Graph, fromOv *Overlay, toBase *graph.Graph, toOv *Overlay) (added, removed []Edge) {
	if fromBase == toBase {
		fa, fr := cumulative(fromOv)
		ta, tr := cumulative(toOv)
		// to − from = (ta − fa) ∪ (fr − tr); from − to symmetric. The
		// added/removed sets of one overlay are disjoint, so set algebra
		// on the four maps is exact.
		added = append(subtractEdges(ta, fa), subtractEdges(fr, tr)...)
		removed = append(subtractEdges(fa, ta), subtractEdges(tr, fr)...)
		sortEdges(added)
		sortEdges(removed)
		return added, removed
	}
	fromView, fromN := viewOf(fromBase, fromOv), viewN(fromBase, fromOv)
	toView, toN := viewOf(toBase, toOv), viewN(toBase, toOv)
	n := fromN
	if toN > n {
		n = toN
	}
	for v := 0; v < n; v++ {
		fs := fromView.neighbors(graph.VertexID(v), fromN)
		ts := toView.neighbors(graph.VertexID(v), toN)
		i, j := 0, 0
		for i < len(fs) || j < len(ts) {
			switch {
			case j == len(ts) || (i < len(fs) && fs[i] < ts[j]):
				if fs[i] > graph.VertexID(v) {
					removed = append(removed, Edge{graph.VertexID(v), fs[i]})
				}
				i++
			case i == len(fs) || ts[j] < fs[i]:
				if ts[j] > graph.VertexID(v) {
					added = append(added, Edge{graph.VertexID(v), ts[j]})
				}
				j++
			default:
				i++
				j++
			}
		}
	}
	return added, removed
}

func cumulative(o *Overlay) (added, removed map[uint64]Edge) {
	added, removed = map[uint64]Edge{}, map[uint64]Edge{}
	if o == nil {
		return added, removed
	}
	for _, e := range o.added {
		added[edgeKey(e)] = e
	}
	for _, e := range o.removed {
		removed[edgeKey(e)] = e
	}
	return added, removed
}

func subtractEdges(a, b map[uint64]Edge) []Edge {
	var out []Edge
	for k, e := range a {
		if _, dup := b[k]; !dup {
			out = append(out, e)
		}
	}
	return out
}

func viewN(base *graph.Graph, ov *Overlay) int {
	if ov != nil {
		return ov.n
	}
	return base.NumVertices()
}
