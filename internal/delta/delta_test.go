package delta

import (
	"math/rand"
	"reflect"
	"testing"

	"light/internal/graph"
)

// buildGraph makes a CSR graph from an edge list over n vertices.
func buildGraph(t *testing.T, n int, edges []Edge) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// edgeSet flattens a view (base plus optional overlay) into a canonical
// edge set for comparison.
func edgeSet(base *graph.Graph, ov *Overlay) map[Edge]bool {
	out := map[Edge]bool{}
	n := viewN(base, ov)
	w := viewOf(base, ov)
	for v := 0; v < n; v++ {
		for _, u := range w.neighbors(graph.VertexID(v), n) {
			out[Edge{graph.VertexID(v), u}.Canon()] = true
		}
	}
	return out
}

func TestApplyBasic(t *testing.T) {
	// Path 0-1-2 plus isolated 3.
	g := buildGraph(t, 4, []Edge{{0, 1}, {1, 2}})
	o, err := Apply(g, nil, []Edge{{2, 3}, {0, 2}}, []Edge{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := o.NumEdges(), int64(3); got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	if o.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", o.NumVertices())
	}
	checks := []struct {
		u, v graph.VertexID
		want bool
	}{
		{0, 1, false}, {1, 2, true}, {2, 3, true}, {0, 2, true}, {1, 3, false},
	}
	for _, c := range checks {
		if got := o.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
	if got := o.Neighbors(1); !reflect.DeepEqual(got, []graph.VertexID{2}) {
		t.Errorf("Neighbors(1) = %v, want [2]", got)
	}
	if o.DeltaEdges() != 3 {
		t.Errorf("DeltaEdges = %d, want 3", o.DeltaEdges())
	}
	if o.Touched(0) != true || o.Touched(3) != true {
		t.Error("endpoints of changed edges must be touched")
	}
}

func TestApplyNoOpSharesPrev(t *testing.T) {
	g := buildGraph(t, 3, []Edge{{0, 1}})
	// Inserting an existing edge and deleting an absent one is a no-op.
	o, err := Apply(g, nil, []Edge{{1, 0}}, []Edge{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Fatalf("no-op Apply over a clean base returned %v, want nil", o)
	}
	o1, err := Apply(g, nil, []Edge{{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Apply(g, o1, []Edge{{2, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o2 != o1 {
		t.Fatal("no-op Apply over an overlay must return the same overlay")
	}
}

func TestApplyDeleteWinsWithinBatch(t *testing.T) {
	g := buildGraph(t, 3, []Edge{{0, 1}})
	o, err := Apply(g, nil, []Edge{{1, 2}}, []Edge{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if o != nil && o.HasEdge(1, 2) {
		t.Fatal("edge both inserted and deleted in one batch must not exist")
	}
}

func TestApplyCopyOnWriteIsolation(t *testing.T) {
	g := buildGraph(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	o1, err := Apply(g, nil, []Edge{{0, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := edgeSet(g, o1)
	n1 := append([]graph.VertexID(nil), o1.Neighbors(0)...)
	o2, err := Apply(g, o1, []Edge{{0, 2}}, []Edge{{0, 3}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// o1's view must be untouched by the second Apply.
	if got := edgeSet(g, o1); !reflect.DeepEqual(got, before) {
		t.Fatalf("prev overlay mutated: %v -> %v", before, got)
	}
	if got := o1.Neighbors(0); !reflect.DeepEqual(got, n1) {
		t.Fatalf("prev overlay Neighbors(0) mutated: %v -> %v", n1, got)
	}
	if o2.HasEdge(0, 3) || !o2.HasEdge(0, 2) || o2.HasEdge(1, 2) {
		t.Fatal("second overlay has wrong view")
	}
	// Cumulative sets: base had {01,12,23}; view2 is {01,23,02}.
	if want := []Edge{{0, 2}}; !reflect.DeepEqual(o2.Added(), want) {
		t.Errorf("Added = %v, want %v", o2.Added(), want)
	}
	if want := []Edge{{1, 2}}; !reflect.DeepEqual(o2.Removed(), want) {
		t.Errorf("Removed = %v, want %v", o2.Removed(), want)
	}
}

func TestApplyRejectsForeignOverlay(t *testing.T) {
	g1 := buildGraph(t, 3, []Edge{{0, 1}})
	g2 := buildGraph(t, 3, []Edge{{0, 2}})
	o, err := Apply(g1, nil, []Edge{{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(g2, o, []Edge{{0, 1}}, nil); err == nil {
		t.Fatal("Apply accepted an overlay built over a different base")
	}
}

func TestFingerprintDistinguishesDeltas(t *testing.T) {
	g := buildGraph(t, 4, []Edge{{0, 1}, {1, 2}})
	o1, _ := Apply(g, nil, []Edge{{2, 3}}, nil)
	o2, _ := Apply(g, nil, []Edge{{0, 3}}, nil)
	o3, _ := Apply(g, nil, nil, []Edge{{0, 1}})
	fps := map[uint64]string{g.Fingerprint(): "base"}
	for name, o := range map[string]*Overlay{"o1": o1, "o2": o2, "o3": o3} {
		fp := o.Fingerprint()
		if prev, dup := fps[fp]; dup {
			t.Fatalf("fingerprint collision between %s and %s", prev, name)
		}
		fps[fp] = name
	}
	// Same deltas → same fingerprint.
	o1b, _ := Apply(g, nil, []Edge{{3, 2}}, nil)
	if o1.Fingerprint() != o1b.Fingerprint() {
		t.Fatal("identical deltas must fingerprint identically")
	}
}

func TestCompactEquivalence(t *testing.T) {
	g := buildGraph(t, 5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}})
	o, err := Apply(g, nil, []Edge{{0, 2}, {1, 6}}, []Edge{{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := Compact(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cg.NumVertices() != o.NumVertices() || cg.NumEdges() != o.NumEdges() {
		t.Fatalf("compacted N=%d M=%d, overlay N=%d M=%d",
			cg.NumVertices(), cg.NumEdges(), o.NumVertices(), o.NumEdges())
	}
	// IDs must be stable: identical adjacency, not merely isomorphic.
	for v := 0; v < o.NumVertices(); v++ {
		want := o.Neighbors(graph.VertexID(v))
		got := cg.Neighbors(graph.VertexID(v))
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Neighbors(%d): compacted %v, overlay %v", v, got, want)
		}
	}
	if cg.Fingerprint() == g.Fingerprint() {
		t.Fatal("compaction of a non-empty overlay must change the fingerprint")
	}
}

func TestDiffSameBaseAndAcrossCompaction(t *testing.T) {
	g := buildGraph(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	o1, _ := Apply(g, nil, []Edge{{0, 2}}, []Edge{{2, 3}})
	o2, _ := Apply(g, o1, []Edge{{2, 3}, {0, 3}}, []Edge{{0, 1}})

	add, rem := Diff(g, nil, g, o1)
	if want := []Edge{{0, 2}}; !reflect.DeepEqual(add, want) {
		t.Errorf("add = %v, want %v", add, want)
	}
	if want := []Edge{{2, 3}}; !reflect.DeepEqual(rem, want) {
		t.Errorf("rem = %v, want %v", rem, want)
	}

	add, rem = Diff(g, o1, g, o2)
	if want := []Edge{{0, 3}, {2, 3}}; !reflect.DeepEqual(add, want) {
		t.Errorf("o1->o2 add = %v, want %v", add, want)
	}
	if want := []Edge{{0, 1}}; !reflect.DeepEqual(rem, want) {
		t.Errorf("o1->o2 rem = %v, want %v", rem, want)
	}

	// Across compaction: diff from the o1 view to the compacted o2 view
	// must agree with the same-base diff.
	cg, err := Compact(o2)
	if err != nil {
		t.Fatal(err)
	}
	addX, remX := Diff(g, o1, cg, nil)
	if !reflect.DeepEqual(addX, add) || !reflect.DeepEqual(remX, rem) {
		t.Errorf("cross-compaction diff (%v, %v), want (%v, %v)", addX, remX, add, rem)
	}
}

// TestApplyMatchesBuilderReference drives random batches through Apply
// and checks the overlay view, edge counts, cumulative sets, and
// compaction against a from-scratch Builder rebuild of the same edge
// set.
func TestApplyMatchesBuilderReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(12)
		// Random base.
		var base []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					base = append(base, Edge{graph.VertexID(u), graph.VertexID(v)})
				}
			}
		}
		g := buildGraph(t, n, base)
		want := edgeSet(g, nil)

		var ov *Overlay
		for round := 0; round < 4; round++ {
			var add, rem []Edge
			for i := 0; i < 1+rng.Intn(5); i++ {
				e := Edge{graph.VertexID(rng.Intn(n + 2)), graph.VertexID(rng.Intn(n + 2))}.Canon()
				if e.U == e.V {
					continue
				}
				if rng.Intn(2) == 0 {
					add = append(add, e)
					delete(want, e) // placeholder; fixed below
					want[e] = true
				} else {
					rem = append(rem, e)
					delete(want, e)
				}
			}
			// Deletions win within a batch.
			for _, e := range rem {
				delete(want, e)
			}
			next, err := Apply(g, ov, add, rem)
			if err != nil {
				t.Fatal(err)
			}
			ov = next
			got := edgeSet(g, ov)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d round %d: view %v, want %v (add %v rem %v)",
					trial, round, got, want, add, rem)
			}
			if ov != nil {
				if int64(len(got)) != ov.NumEdges() {
					t.Fatalf("NumEdges = %d, view has %d", ov.NumEdges(), len(got))
				}
				// Cumulative sets replay onto the base exactly.
				replay := edgeSet(g, nil)
				for _, e := range ov.Added() {
					replay[e] = true
				}
				for _, e := range ov.Removed() {
					delete(replay, e)
				}
				if !reflect.DeepEqual(replay, got) {
					t.Fatalf("cumulative replay %v, view %v", replay, got)
				}
				// Max-degree bound holds for every vertex.
				for v := 0; v < ov.NumVertices(); v++ {
					if d := ov.Degree(graph.VertexID(v)); d > ov.MaxDegree() {
						t.Fatalf("Degree(%d)=%d exceeds MaxDegree bound %d", v, d, ov.MaxDegree())
					}
				}
			}
		}
		if ov != nil {
			cg, err := Compact(ov)
			if err != nil {
				t.Fatal(err)
			}
			if got := edgeSet(cg, nil); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: compacted view %v, want %v", trial, got, want)
			}
		}
	}
}

func TestFromCSRRejectsCorruptInput(t *testing.T) {
	// Asymmetric edge: 0->1 without 1->0.
	if _, err := graph.FromCSR([]int64{0, 1, 1}, []graph.VertexID{1}); err == nil {
		t.Fatal("FromCSR accepted an asymmetric edge")
	}
	// Non-monotone offsets.
	if _, err := graph.FromCSR([]int64{0, 2, 1}, []graph.VertexID{1, 1}); err == nil {
		t.Fatal("FromCSR accepted non-monotone offsets")
	}
}
