package graph

import (
	"encoding/binary"
	"hash/fnv"
)

// Fingerprint returns an FNV-1a hash over the graph's full CSR content
// (vertex count plus every offset and adjacency entry), identifying the
// graph snapshot for registries and result caches: two graphs with
// equal fingerprints have identical adjacency structure for all
// practical purposes, and any edit to the graph changes the value.
// Computed once on first use (graphs are immutable) and safe for
// concurrent callers.
func (g *Graph) Fingerprint() uint64 {
	g.fpOnce.Do(func() {
		h := fnv.New64a()
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(g.NumVertices()))
		h.Write(b[:]) //lightvet:ignore hygiene -- fnv.Write cannot fail
		for _, off := range g.offsets {
			binary.LittleEndian.PutUint64(b[:], uint64(off))
			h.Write(b[:]) //lightvet:ignore hygiene -- fnv.Write cannot fail
		}
		buf := b[:4]
		for _, w := range g.adj {
			binary.LittleEndian.PutUint32(buf, w)
			h.Write(buf) //lightvet:ignore hygiene -- fnv.Write cannot fail
		}
		g.fp = h.Sum64()
	})
	return g.fp
}
