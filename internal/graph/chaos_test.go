//go:build faultinject

package graph

import (
	"bytes"
	"errors"
	"testing"

	"light/internal/faultpoint"
)

// TestChaosCSRReadFailure: an injected I/O error at the CSR read point
// surfaces as an ordinary load error, and the codec recovers once the
// fault clears.
func TestChaosCSRReadFailure(t *testing.T) {
	defer faultpoint.Reset()
	g := FromAdjacency([][]VertexID{{1, 2}, {0}, {0}})
	var buf bytes.Buffer
	if err := g.WriteCSR(&buf); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected read failure")
	faultpoint.Set(faultpoint.PointCSRRead, faultpoint.FailTimes(1, injected))
	if _, err := ReadCSR(bytes.NewReader(buf.Bytes())); !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected read failure", err)
	}
	got, err := ReadCSR(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("fault cleared but read still fails: %v", err)
	}
	if got.NumEdges() != g.NumEdges() {
		t.Fatal("round trip mismatch after fault cleared")
	}
}
