package graph

import "testing"

func TestFingerprintIdentifiesSnapshot(t *testing.T) {
	g1 := starGraph(50, [][2]VertexID{{1, 2}})
	g2 := starGraph(50, [][2]VertexID{{1, 2}})
	g3 := starGraph(50, [][2]VertexID{{1, 3}})
	if g1.Fingerprint() == 0 {
		t.Fatal("zero fingerprint")
	}
	if g1.Fingerprint() != g1.Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatal("identical graphs, different fingerprints")
	}
	if g1.Fingerprint() == g3.Fingerprint() {
		t.Fatal("different graphs, same fingerprint")
	}
}
