package graph

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"

	"light/internal/faultpoint"
)

// ReadEdgeList parses a whitespace-separated edge-list stream: one
// "u v" pair per line, '#' or '%' starting a comment line. Vertex IDs are
// non-negative integers. Duplicate edges, reversed duplicates, and
// self-loops are tolerated and deduplicated.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least two fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[1], err)
		}
		b.AddEdge(VertexID(u), VertexID(v)) //lightvet:ignore indexsafety -- ParseUint bitSize 32 bounds both values
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Build(), nil
}

// LoadEdgeList reads an edge-list file (see ReadEdgeList) and returns the
// graph relabeled into degree order. Files ending in .gz are
// transparently decompressed (SNAP distributes its graphs gzipped).
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	g, err := ReadEdgeList(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return Reorder(g), nil
}

// csrMagic identifies the binary CSR format. Version 2 appends a CRC32
// (IEEE) trailer over everything before it; version 1 files (no
// trailer) are still accepted for compatibility with old gengraph
// output.
const (
	csrMagic   = 0x4c494748 // "LIGH"
	csrVersion = 2
)

// WriteCSR serializes the graph in a compact little-endian binary format:
// magic, version, N, then N+1 offsets (uint64), 2M neighbor IDs
// (uint32), and a CRC32 trailer over all preceding bytes.
func (g *Graph) WriteCSR(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<20)
	hdr := [4]uint64{csrMagic, csrVersion, uint64(g.NumVertices()), uint64(len(g.adj))}
	for _, x := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	for _, off := range g.offsets {
		if err := binary.Write(bw, binary.LittleEndian, uint64(off)); err != nil {
			return err
		}
	}
	// Write adjacency in chunks to avoid reflection overhead per element.
	const chunk = 1 << 16
	buf := make([]byte, 4*chunk)
	for i := 0; i < len(g.adj); i += chunk {
		end := i + chunk
		if end > len(g.adj) {
			end = len(g.adj)
		}
		n := 0
		for _, v := range g.adj[i:end] {
			binary.LittleEndian.PutUint32(buf[n:], v)
			n += 4
		}
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	// The trailer must not feed the CRC writer, so flush the buffered
	// payload through the MultiWriter first and write the sum directly.
	if err := bw.Flush(); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	_, err := w.Write(trailer[:])
	return err
}

// ReadCSR deserializes a graph written by WriteCSR, verifying the CRC32
// trailer on version-2 files (version 1 has none and is accepted as
// legacy). The CRC runs over the payload bytes as they are parsed, so
// verification is streaming — corruption detection costs no extra pass
// or whole-file buffering.
func ReadCSR(r io.Reader) (*Graph, error) {
	if err := faultpoint.Hit(faultpoint.PointCSRRead); err != nil {
		return nil, fmt.Errorf("graph: reading CSR: %w", err)
	}
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [4]uint64
	var hdrBytes [32]byte
	if _, err := io.ReadFull(br, hdrBytes[:]); err != nil {
		return nil, fmt.Errorf("graph: reading CSR header: %w", err)
	}
	crc.Write(hdrBytes[:]) //lightvet:ignore hygiene -- crc32 Write cannot fail
	for i := range hdr {
		hdr[i] = binary.LittleEndian.Uint64(hdrBytes[8*i:])
	}
	if hdr[0] != csrMagic {
		return nil, fmt.Errorf("graph: bad CSR magic %#x", hdr[0])
	}
	if hdr[1] != 1 && hdr[1] != csrVersion {
		return nil, fmt.Errorf("graph: unsupported CSR version %d", hdr[1])
	}
	// Sanity-cap the header sizes before converting to int, so a
	// corrupted header can neither overflow the conversions below nor
	// trigger a multi-terabyte allocation before the payload read fails.
	const maxEntries = 1 << 31
	if hdr[2] > maxEntries || hdr[3] > maxEntries || hdr[3]%2 != 0 {
		return nil, fmt.Errorf("graph: implausible CSR header (N=%d, 2M=%d)", hdr[2], hdr[3])
	}
	n, m2 := int(hdr[2]), int(hdr[3]) //lightvet:ignore indexsafety -- bounded by the maxEntries check above
	// Grow the arrays as payload actually arrives instead of trusting the
	// header: a 40-byte corrupt stream claiming 2^31 vertices must fail on
	// its first short read, not allocate gigabytes up front.
	buf := make([]byte, 8*(1<<13))
	g := &Graph{}
	initialCap := n + 1
	if initialCap > 1<<16 {
		initialCap = 1 << 16
	}
	g.offsets = make([]int64, 0, initialCap)
	for remaining := n + 1; remaining > 0; {
		cnt := remaining
		if cnt > len(buf)/8 {
			cnt = len(buf) / 8
		}
		if _, err := io.ReadFull(br, buf[:8*cnt]); err != nil {
			return nil, fmt.Errorf("graph: reading CSR offsets: %w", err)
		}
		crc.Write(buf[:8*cnt]) //lightvet:ignore hygiene -- crc32 Write cannot fail
		for j := 0; j < cnt; j++ {
			x := binary.LittleEndian.Uint64(buf[8*j:])
			g.offsets = append(g.offsets, int64(x)) //lightvet:ignore indexsafety -- Validate below rejects negative or out-of-range offsets
		}
		remaining -= cnt
	}
	adjCap := m2
	if adjCap > 1<<16 {
		adjCap = 1 << 16
	}
	g.adj = make([]VertexID, 0, adjCap)
	for remaining := m2; remaining > 0; {
		cnt := remaining
		if cnt > len(buf)/4 {
			cnt = len(buf) / 4
		}
		if _, err := io.ReadFull(br, buf[:4*cnt]); err != nil {
			return nil, fmt.Errorf("graph: reading CSR adjacency: %w", err)
		}
		crc.Write(buf[:4*cnt]) //lightvet:ignore hygiene -- crc32 Write cannot fail
		for j := 0; j < cnt; j++ {
			g.adj = append(g.adj, binary.LittleEndian.Uint32(buf[4*j:]))
		}
		remaining -= cnt
	}
	if hdr[1] == csrVersion {
		var trailer [4]byte
		if _, err := io.ReadFull(br, trailer[:]); err != nil {
			return nil, fmt.Errorf("graph: reading CSR trailer: %w", err)
		}
		if got, want := crc.Sum32(), binary.LittleEndian.Uint32(trailer[:]); got != want {
			return nil, fmt.Errorf("graph: corrupt CSR payload: CRC %#x, want %#x", got, want)
		}
	}
	// Validate before finalize: finalize slices adjacency through the
	// offsets (degree stats, hub bitmaps), so corrupt offsets must be
	// rejected first — a version-1 file has no CRC to catch them.
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: corrupt CSR payload: %w", err)
	}
	g.finalize()
	return g, nil
}

// SaveCSR writes the graph to path in the binary CSR format.
func (g *Graph) SaveCSR(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := g.WriteCSR(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// LoadCSR reads a binary CSR graph from path. Gzipped files are
// transparently decompressed — detected by the gzip magic bytes, not
// the file name, so both graph.csr.gz and oddly-named compressed
// snapshots load.
func LoadCSR(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var r io.Reader = br
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	g, err := ReadCSR(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}
