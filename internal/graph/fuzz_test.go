package graph

import (
	"bytes"
	"testing"
)

// csrBytes serializes g, failing the fuzz setup on error.
func csrBytes(f *testing.F, g *Graph) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := g.WriteCSR(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCSRRoundTrip feeds arbitrary bytes to the binary CSR decoder.
// Invalid input must be rejected with an error — never a panic, hang,
// or header-driven huge allocation. Accepted input must describe a
// graph that passes Validate and survives a write/read round trip
// byte-identically.
func FuzzCSRRoundTrip(f *testing.F) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	f.Add(csrBytes(f, b.Build()))
	f.Add(csrBytes(f, NewBuilder(0).Build()))
	f.Add(csrBytes(f, NewBuilder(3).Build())) // vertices, no edges
	f.Add([]byte{})
	f.Add([]byte{0x48, 0x47, 0x49, 0x4c}) // truncated header
	// Plausible header with no payload: magic, version 1, N=2^20, 2M=0.
	hdr := make([]byte, 32)
	copy(hdr, []byte{0x48, 0x47, 0x49, 0x4c, 0, 0, 0, 0, 1})
	hdr[16], hdr[18] = 0, 0x10
	f.Add(hdr)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadCSR(bytes.NewReader(data))
		if err != nil {
			return // rejection is the expected outcome for junk input
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("ReadCSR accepted a graph that fails Validate: %v", err)
		}
		var out bytes.Buffer
		if err := g.WriteCSR(&out); err != nil {
			t.Fatalf("WriteCSR of an accepted graph: %v", err)
		}
		g2, err := ReadCSR(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading our own CSR output: %v", err)
		}
		if g.NumVertices() != g2.NumVertices() || g.NumEdges() != g2.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d vertices, %d/%d edges",
				g.NumVertices(), g2.NumVertices(), g.NumEdges(), g2.NumEdges())
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Neighbors(VertexID(v)), g2.Neighbors(VertexID(v))
			if len(a) != len(b) {
				t.Fatalf("vertex %d: neighbor count %d vs %d", v, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("vertex %d: neighbor %d is %d vs %d", v, i, a[i], b[i])
				}
			}
		}
		var again bytes.Buffer
		if err := g2.WriteCSR(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), again.Bytes()) {
			t.Fatal("WriteCSR is not byte-stable across a round trip")
		}
		// The canonical (v2, CRC-trailed) encoding must reject any
		// single-byte corruption, wherever it lands.
		canon := out.Bytes()
		for _, pos := range []int{0, len(canon) / 2, len(canon) - 5, len(canon) - 1} {
			if pos < 0 || pos >= len(canon) {
				continue
			}
			mut := append([]byte(nil), canon...)
			mut[pos] ^= 0x55
			if _, err := ReadCSR(bytes.NewReader(mut)); err == nil {
				t.Fatalf("flip at byte %d of canonical encoding accepted", pos)
			}
		}
	})
}
