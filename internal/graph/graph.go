// Package graph provides the in-memory data-graph representation used by
// the LIGHT subgraph-enumeration engine: an undirected, unlabeled graph
// stored in compressed sparse row (CSR) form with sorted neighbor lists.
//
// Following the paper (Section II-A), data graphs are "ordered graphs":
// vertex IDs are assigned so that v < v' iff d(v) < d(v'), or
// d(v) = d(v') and the original ID of v is smaller. This lets the
// symmetry-breaking partial order on pattern vertices be enforced by
// comparing plain vertex IDs. Use Reorder (or Builder.BuildOrdered) to
// obtain an ordered graph from arbitrary input.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// VertexID identifies a data vertex. The paper stores IDs as 32-bit
// unsigned integers; we do the same.
type VertexID = uint32

// Graph is an undirected, unlabeled graph in CSR form. Neighbor lists are
// sorted by vertex ID and contain no duplicates or self-loops. The zero
// value is an empty graph.
type Graph struct {
	offsets []int64    // len = N+1; neighbor list of v is adj[offsets[v]:offsets[v+1]]
	adj     []VertexID // concatenated sorted neighbor lists; len = 2M

	maxDegree int
	// degreeSum2 and degreeSum3 are Σ d(v)^2 and Σ d(v)^3, used by the
	// cardinality estimator. Cached at construction.
	degreeSum2 float64
	degreeSum3 float64

	// hub is the degree-threshold bitmap index over high-degree
	// neighbor lists (see hub.go); auto-built by finalize, rebuilt or
	// dropped via BuildHubIndex. Published atomically so hot-path
	// readers (HubBitmap) never observe a partial rebuild; hubMu
	// serializes builds, and hubPinned (guarded by hubMu) records that
	// an explicit τ won the first-wins EnsureHubIndex race.
	hub       atomic.Pointer[hubIndex]
	hubMu     sync.Mutex
	hubPinned bool
	hubBuilds atomic.Uint64

	// fp is the lazily computed content fingerprint (see Fingerprint).
	fpOnce sync.Once
	fp     uint64
}

// NumVertices returns |V(G)| (N in the paper).
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns |E(G)| (M in the paper): the number of undirected edges.
func (g *Graph) NumEdges() int64 {
	return int64(len(g.adj)) / 2
}

// Degree returns d(v), the number of neighbors of v. The offset index is
// computed in int64 so v = MaxUint32 cannot wrap to offsets[0].
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[int64(v)+1] - g.offsets[v])
}

// MaxDegree returns max over v of d(v) (d_max in the paper), or 0 for an
// empty graph.
func (g *Graph) MaxDegree() int { return g.maxDegree }

// DegreeSum2 returns Σ_v d(v)^2.
func (g *Graph) DegreeSum2() float64 { return g.degreeSum2 }

// DegreeSum3 returns Σ_v d(v)^3.
func (g *Graph) DegreeSum3() float64 { return g.degreeSum3 }

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.adj[g.offsets[v]:g.offsets[int64(v)+1]]
}

// HasEdge reports whether the edge (u, v) exists, by binary search on the
// smaller-degree endpoint's list.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// MemoryBytes returns the approximate in-memory size of the CSR arrays,
// mirroring the paper's Table II "Memory" column.
func (g *Graph) MemoryBytes() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.adj))*4
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{N=%d, M=%d, dmax=%d}", g.NumVertices(), g.NumEdges(), g.maxDegree)
}

// Validate checks the CSR invariants: offsets monotone, neighbor lists
// sorted and duplicate-free, no self-loops, and every edge symmetric. It is
// O(M log d_max) and intended for tests and loaders, not hot paths.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	// Offsets first: everything else indexes through them, so they must
	// be fully checked before any adjacency access (corrupted inputs
	// must error, not panic).
	if len(g.offsets) > 0 {
		if g.offsets[0] != 0 {
			return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
		}
		if g.offsets[n] != int64(len(g.adj)) {
			return fmt.Errorf("graph: offsets[N] = %d, want %d", g.offsets[n], len(g.adj))
		}
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		if g.offsets[v] < 0 || g.offsets[v+1] > int64(len(g.adj)) {
			return fmt.Errorf("graph: offsets out of range at vertex %d", v)
		}
	}
	for v := 0; v < n; v++ {
		ns := g.Neighbors(VertexID(v))
		for i, w := range ns {
			if int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if w == VertexID(v) {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if i > 0 && ns[i-1] >= w {
				return fmt.Errorf("graph: neighbors of %d not strictly sorted at position %d", v, i)
			}
			if !g.HasEdge(w, VertexID(v)) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, w)
			}
		}
	}
	return nil
}

// finalize recomputes the cached degree statistics and auto-builds the
// hub bitmap index.
func (g *Graph) finalize() {
	g.maxDegree = 0
	g.degreeSum2 = 0
	g.degreeSum3 = 0
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(VertexID(v))
		if d > g.maxDegree {
			g.maxDegree = d
		}
		fd := float64(d)
		g.degreeSum2 += fd * fd
		g.degreeSum3 += fd * fd * fd
	}
	// Auto-build the hub index without pinning: the construction-time
	// default must not win the EnsureHubIndex first-τ race against a
	// query's explicit HubDegreeThreshold.
	g.hubMu.Lock()
	g.buildHubLocked(0)
	g.hubMu.Unlock()
}

// Edge is an undirected edge between two data vertices.
type Edge struct{ U, V VertexID }

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are dropped. The zero value is ready to use.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph with n vertices. Edges may
// reference vertices beyond n; the vertex count grows to fit.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge records the undirected edge (u, v). Self-loops are ignored.
func (b *Builder) AddEdge(u, v VertexID) {
	if int(u) >= b.n {
		b.n = int(u) + 1
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	if u == v {
		return
	}
	b.edges = append(b.edges, Edge{u, v})
}

// NumEdgesAdded returns the number of AddEdge calls retained so far
// (before deduplication).
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// Build constructs the CSR graph, deduplicating edges.
func (b *Builder) Build() *Graph {
	n := b.n
	deg := make([]int64, n+1)
	for _, e := range b.edges {
		deg[int64(e.U)+1]++
		deg[int64(e.V)+1]++
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v+1]
	}
	adj := make([]VertexID, offsets[n])
	cursor := make([]int64, n)
	for _, e := range b.edges {
		adj[offsets[e.U]+cursor[e.U]] = e.V
		cursor[e.U]++
		adj[offsets[e.V]+cursor[e.V]] = e.U
		cursor[e.V]++
	}
	// Sort each neighbor list and strip duplicates in place, compacting
	// the adjacency array.
	out := adj[:0]
	newOffsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		ns := adj[offsets[v] : offsets[v]+cursor[v]]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		newOffsets[v] = int64(len(out))
		for i, w := range ns {
			if i > 0 && ns[i-1] == w {
				continue
			}
			out = append(out, w)
		}
	}
	newOffsets[n] = int64(len(out))
	g := &Graph{offsets: newOffsets, adj: out}
	g.finalize()
	return g
}

// BuildOrdered constructs the graph and then relabels it into an ordered
// graph (degree-then-ID order); see Reorder.
func (b *Builder) BuildOrdered() *Graph { return Reorder(b.Build()) }

// FromCSR constructs a graph directly from prebuilt CSR arrays,
// taking ownership of both slices (callers must not modify them
// afterwards). The arrays must satisfy the CSR invariants — offsets
// monotone with offsets[0]==0 and offsets[N]==len(adj), neighbor lists
// strictly sorted, no self-loops, every edge symmetric — and are fully
// validated, so corrupt input errors instead of corrupting later
// enumeration. Vertex IDs are preserved exactly as given (no degree
// reordering): the delta compactor uses this to publish a fresh base
// snapshot whose IDs remain stable across compaction.
func FromCSR(offsets []int64, adj []VertexID) (*Graph, error) {
	if len(offsets) == 0 {
		offsets = []int64{0}
	}
	g := &Graph{offsets: offsets, adj: adj}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.finalize()
	return g, nil
}

// FromAdjacency builds a graph directly from an adjacency list
// representation (convenient in tests). Lists need not be sorted.
func FromAdjacency(adj [][]VertexID) *Graph {
	b := NewBuilder(len(adj))
	for u, ns := range adj {
		for _, v := range ns {
			if VertexID(u) < v {
				b.AddEdge(VertexID(u), v)
			}
		}
	}
	return b.Build()
}

// Reorder relabels the vertices of g so that IDs respect the paper's total
// order: v < v' iff d(v) < d(v'), or d(v) = d(v') and the old ID of v is
// smaller. Returns a new graph; g is unchanged. The mapping makes ID
// comparison implement the "<" relation the symmetry-breaking technique
// requires.
func Reorder(g *Graph) *Graph {
	ng, _ := ReorderWithMapping(g)
	return ng
}

// ReorderWithMapping is Reorder but also returns oldToNew, the relabeling
// applied: oldToNew[old] = new.
func ReorderWithMapping(g *Graph) (*Graph, []VertexID) {
	n := g.NumVertices()
	order := make([]VertexID, n)
	for i := range order {
		order[i] = VertexID(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	oldToNew := make([]VertexID, n)
	for newID, oldID := range order {
		oldToNew[oldID] = VertexID(newID)
	}
	offsets := make([]int64, n+1)
	adj := make([]VertexID, len(g.adj))
	var pos int64
	for newID := 0; newID < n; newID++ {
		offsets[newID] = pos
		for _, w := range g.Neighbors(order[newID]) {
			adj[pos] = oldToNew[w]
			pos++
		}
		ns := adj[offsets[newID]:pos]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	offsets[n] = pos
	ng := &Graph{offsets: offsets, adj: adj}
	ng.finalize()
	return ng, oldToNew
}

// IsOrdered reports whether vertex IDs are nondecreasing in degree, i.e.
// whether g is an ordered graph in the paper's sense.
func (g *Graph) IsOrdered() bool {
	prev := -1
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(VertexID(v))
		if d < prev {
			return false
		}
		prev = d
	}
	return true
}

// AverageDegree returns 2M/N, or 0 for an empty graph.
func (g *Graph) AverageDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(len(g.adj)) / float64(n)
}

// EdgeProbability returns the Erdős–Rényi edge probability 2M/(N(N-1)),
// used as a fallback by the cardinality estimator.
func (g *Graph) EdgeProbability() float64 {
	n := float64(g.NumVertices())
	if n < 2 {
		return 0
	}
	p := float64(len(g.adj)) / (n * (n - 1))
	return math.Min(p, 1)
}
