package graph

import (
	"math"
	"sort"

	"light/internal/bitset"
)

// This file implements the degree-threshold hub index: every vertex
// with d(v) >= τ ("hub") carries a word-packed bitmap form of its
// neighbor list (internal/bitset), so the intersection kernels can
// replace an O(|small|·log|hub|) gallop against a hub with O(|small|)
// bitmap probes — the bitset strategy of Ferraz et al. adapted to the
// paper's CSR layout. The index is derived entirely from the adjacency
// structure and never participates in checkpoints.
//
// Concurrency: the index pointer is published atomically and every
// published index is immutable, so queries running on the same *Graph
// read a consistent snapshot with plain loads while another query
// rebuilds. Builds are serialized by hubMu and never expose a
// partially-built index (the historical nil-then-swap rebuild raced
// with the hot-path HubBitmap reader and could drop bitmap probes or
// crash mid-run). BuildHubIndex is idempotent for a repeated τ, and
// EnsureHubIndex adds the first-wins policy concurrent queries need.

// hubMinDegreeFloor is the smallest auto-tuned τ: below ~64 neighbors a
// galloping probe is already only a handful of cache lines, so a bitmap
// buys nothing.
const hubMinDegreeFloor = 64

// hubAvgDegreeFactor scales the average degree into the auto τ: a hub
// should be an outlier, several times the typical neighborhood size.
const hubAvgDegreeFactor = 8

// hubBudgetFloorBytes is the minimum bitmap-storage budget, so small
// graphs can always index their hubs.
const hubBudgetFloorBytes = 64 << 10

// hubTauDropped is the effective threshold of a deliberately dropped
// index: no degree can reach it, so the hot-path degree gate rejects
// every lookup with one comparison.
const hubTauDropped = math.MaxInt

// hubIndex maps hub vertices (sorted ascending) to their bitmaps. A
// vertex above the degree threshold may still lack a bitmap when the
// memory budget excluded its span; lookups simply return nil and the
// kernels fall back to list intersection. A hubIndex is immutable once
// published through Graph.hub.
type hubIndex struct {
	req   int              // the τ argument the build was requested with (0 = auto, < 0 = dropped)
	tau   int              // effective degree threshold (hubTauDropped when dropped)
	ids   []VertexID       // hub vertex ids, ascending
	maps  []*bitset.Bitmap // maps[i] is the bitmap of Neighbors(ids[i])
	bytes int64            // total bitmap storage
}

// autoHubThreshold derives τ from the degree distribution:
// hubAvgDegreeFactor × ⌈2M/N⌉, floored at hubMinDegreeFloor. 0 (no
// index) for an edgeless graph.
func (g *Graph) autoHubThreshold() int {
	n := g.NumVertices()
	if n == 0 || len(g.adj) == 0 {
		return 0
	}
	avg := (int64(len(g.adj)) + int64(n) - 1) / int64(n)
	tau := int(avg) * hubAvgDegreeFactor
	if tau < hubMinDegreeFloor {
		tau = hubMinDegreeFloor
	}
	return tau
}

// hubBudgetBytes bounds the index's bitmap storage: 4× the CSR
// adjacency array (so the index can never dominate the graph's own
// footprint), floored for small graphs.
func (g *Graph) hubBudgetBytes() int64 {
	b := int64(len(g.adj)) * 4 * 4
	if b < hubBudgetFloorBytes {
		b = hubBudgetFloorBytes
	}
	return b
}

// BuildHubIndex (re)builds the hub index with degree threshold tau:
// positive values set τ explicitly, 0 auto-tunes it from the degree
// distribution (the default applied by graph construction), and
// negative values drop the index entirely. Hubs are indexed in
// descending degree order until the memory budget is reached; hubs
// whose bitmap span exceeds the remaining budget are skipped (their
// intersections fall back to the list kernels).
//
// Safe to call while the graph is being enumerated concurrently: the
// new index is built aside and published atomically, so in-flight
// queries keep reading the old snapshot until the swap. Repeated calls
// with the τ the current index was built with are no-ops. An explicit
// call also pins τ for EnsureHubIndex (first-wins; see there).
func (g *Graph) BuildHubIndex(tau int) {
	g.hubMu.Lock()
	defer g.hubMu.Unlock()
	g.hubPinned = true
	g.buildHubLocked(tau)
}

// EnsureHubIndex is the query-path preparation of the hub index: the
// first caller to request a specific τ on this graph rebuilds the
// index and pins that τ; every later call — even with a conflicting
// τ — is a no-op reading whatever the winner built. First-wins keeps
// concurrent queries with mixed HubDegreeThreshold settings from
// thrashing rebuilds against each other; a caller that genuinely wants
// a different τ must use BuildHubIndex, which always applies its
// argument. Returns true when this call performed the build.
func (g *Graph) EnsureHubIndex(tau int) bool {
	if cur := g.hub.Load(); cur != nil && cur.req == tau {
		return false // already in the requested state, lock-free
	}
	g.hubMu.Lock()
	defer g.hubMu.Unlock()
	if g.hubPinned {
		return false // an earlier query (or explicit build) won
	}
	g.hubPinned = true
	return g.buildHubLocked(tau)
}

// buildHubLocked builds and atomically publishes the index for the
// requested τ, skipping the work when the current index already
// answers the same request. Callers must hold hubMu. Reports whether a
// build actually ran.
func (g *Graph) buildHubLocked(req int) bool {
	if cur := g.hub.Load(); cur != nil && cur.req == req {
		return false
	}
	g.hubBuilds.Add(1)
	h := &hubIndex{req: req, tau: req}
	if req == 0 {
		h.tau = g.autoHubThreshold()
	}
	if h.tau <= 0 {
		// Dropped by request (τ < 0), or nothing to index (edgeless
		// graph): publish an empty index whose degree gate rejects
		// everything, so the reader never needs a nil special case
		// beyond the never-built zero value.
		h.tau = hubTauDropped
		g.hub.Store(h)
		return true
	}
	n := g.NumVertices()
	var cands []VertexID
	for v := 0; v < n; v++ {
		if g.Degree(VertexID(v)) >= h.tau {
			cands = append(cands, VertexID(v))
		}
	}
	if len(cands) == 0 {
		g.hub.Store(h)
		return true
	}
	// Degree-descending build order: under a budget, the highest-degree
	// hubs are the ones whose gallops are most expensive to keep.
	sort.Slice(cands, func(i, j int) bool {
		di, dj := g.Degree(cands[i]), g.Degree(cands[j])
		if di != dj {
			return di > dj
		}
		return cands[i] < cands[j]
	})
	budget := g.hubBudgetBytes()
	for _, v := range cands {
		ns := g.Neighbors(v)
		est := bitset.EstimateBytes(ns[0], ns[len(ns)-1])
		if h.bytes+est > budget {
			continue // later hubs may have narrower spans that still fit
		}
		h.ids = append(h.ids, v)
		h.maps = append(h.maps, bitset.FromSorted(ns))
		h.bytes += est
	}
	sort.Sort(hubByID{h})
	g.hub.Store(h)
	return true
}

// HubBuilds returns how many hub-index builds this graph has performed
// (including the automatic build at construction) — an observability
// hook for tests asserting that concurrent queries share one build.
func (g *Graph) HubBuilds() uint64 { return g.hubBuilds.Load() }

// hubByID sorts the index's parallel id/bitmap slices by vertex id, the
// order HubBitmap's binary search requires.
type hubByID struct{ h *hubIndex }

func (s hubByID) Len() int           { return len(s.h.ids) }
func (s hubByID) Less(i, j int) bool { return s.h.ids[i] < s.h.ids[j] }
func (s hubByID) Swap(i, j int) {
	s.h.ids[i], s.h.ids[j] = s.h.ids[j], s.h.ids[i]
	s.h.maps[i], s.h.maps[j] = s.h.maps[j], s.h.maps[i]
}

// HubBitmap returns the bitmap form of v's neighbor list, or nil when v
// is not an indexed hub (no index, degree below τ, or excluded by the
// memory budget). The degree gate makes the common non-hub case one
// comparison; only genuine hubs pay the binary search. Safe under a
// concurrent rebuild: the atomic load pins one immutable snapshot.
//
//light:hotpath
func (g *Graph) HubBitmap(v VertexID) *bitset.Bitmap {
	h := g.hub.Load()
	if h == nil || len(h.ids) == 0 || g.Degree(v) < h.tau {
		return nil
	}
	lo, hi := 0, len(h.ids)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if h.ids[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.ids) && h.ids[lo] == v {
		return h.maps[lo]
	}
	return nil
}

// HubThreshold returns the degree threshold τ of the current hub
// index, or 0 when the graph carries none (never built, or dropped).
func (g *Graph) HubThreshold() int {
	h := g.hub.Load()
	if h == nil || h.tau == hubTauDropped {
		return 0
	}
	return h.tau
}

// NumHubs returns the number of vertices with an indexed bitmap.
func (g *Graph) NumHubs() int {
	h := g.hub.Load()
	if h == nil {
		return 0
	}
	return len(h.ids)
}

// HubIndexBytes returns the bitmap storage held by the hub index.
func (g *Graph) HubIndexBytes() int64 {
	h := g.hub.Load()
	if h == nil {
		return 0
	}
	return h.bytes
}
