package graph

import (
	"sort"

	"light/internal/bitset"
)

// This file implements the degree-threshold hub index: every vertex
// with d(v) >= τ ("hub") carries a word-packed bitmap form of its
// neighbor list (internal/bitset), so the intersection kernels can
// replace an O(|small|·log|hub|) gallop against a hub with O(|small|)
// bitmap probes — the bitset strategy of Ferraz et al. adapted to the
// paper's CSR layout. The index is built once per graph (at Build /
// Reorder / load time via finalize) and is immutable afterwards; it
// never participates in checkpoints because it is derived entirely
// from the adjacency structure.

// hubMinDegreeFloor is the smallest auto-tuned τ: below ~64 neighbors a
// galloping probe is already only a handful of cache lines, so a bitmap
// buys nothing.
const hubMinDegreeFloor = 64

// hubAvgDegreeFactor scales the average degree into the auto τ: a hub
// should be an outlier, several times the typical neighborhood size.
const hubAvgDegreeFactor = 8

// hubBudgetFloorBytes is the minimum bitmap-storage budget, so small
// graphs can always index their hubs.
const hubBudgetFloorBytes = 64 << 10

// hubIndex maps hub vertices (sorted ascending) to their bitmaps. A
// vertex above the degree threshold may still lack a bitmap when the
// memory budget excluded its span; lookups simply return nil and the
// kernels fall back to list intersection.
type hubIndex struct {
	tau   int
	ids   []VertexID       // hub vertex ids, ascending
	maps  []*bitset.Bitmap // maps[i] is the bitmap of Neighbors(ids[i])
	bytes int64            // total bitmap storage
}

// autoHubThreshold derives τ from the degree distribution:
// hubAvgDegreeFactor × ⌈2M/N⌉, floored at hubMinDegreeFloor. 0 (no
// index) for an edgeless graph.
func (g *Graph) autoHubThreshold() int {
	n := g.NumVertices()
	if n == 0 || len(g.adj) == 0 {
		return 0
	}
	avg := (int64(len(g.adj)) + int64(n) - 1) / int64(n)
	tau := int(avg) * hubAvgDegreeFactor
	if tau < hubMinDegreeFloor {
		tau = hubMinDegreeFloor
	}
	return tau
}

// hubBudgetBytes bounds the index's bitmap storage: 4× the CSR
// adjacency array (so the index can never dominate the graph's own
// footprint), floored for small graphs.
func (g *Graph) hubBudgetBytes() int64 {
	b := int64(len(g.adj)) * 4 * 4
	if b < hubBudgetFloorBytes {
		b = hubBudgetFloorBytes
	}
	return b
}

// BuildHubIndex (re)builds the hub index with degree threshold tau:
// positive values set τ explicitly, 0 auto-tunes it from the degree
// distribution (the default applied by graph construction), and
// negative values drop the index entirely. Hubs are indexed in
// descending degree order until the memory budget is reached; hubs
// whose bitmap span exceeds the remaining budget are skipped (their
// intersections fall back to the list kernels).
//
// The graph must not be enumerated concurrently with a rebuild.
func (g *Graph) BuildHubIndex(tau int) {
	g.hub = nil
	if tau < 0 {
		return
	}
	if tau == 0 {
		tau = g.autoHubThreshold()
	}
	if tau <= 0 {
		return
	}
	h := &hubIndex{tau: tau}
	g.hub = h
	n := g.NumVertices()
	var cands []VertexID
	for v := 0; v < n; v++ {
		if g.Degree(VertexID(v)) >= tau {
			cands = append(cands, VertexID(v))
		}
	}
	if len(cands) == 0 {
		return
	}
	// Degree-descending build order: under a budget, the highest-degree
	// hubs are the ones whose gallops are most expensive to keep.
	sort.Slice(cands, func(i, j int) bool {
		di, dj := g.Degree(cands[i]), g.Degree(cands[j])
		if di != dj {
			return di > dj
		}
		return cands[i] < cands[j]
	})
	budget := g.hubBudgetBytes()
	for _, v := range cands {
		ns := g.Neighbors(v)
		est := bitset.EstimateBytes(ns[0], ns[len(ns)-1])
		if h.bytes+est > budget {
			continue // later hubs may have narrower spans that still fit
		}
		h.ids = append(h.ids, v)
		h.maps = append(h.maps, bitset.FromSorted(ns))
		h.bytes += est
	}
	sort.Sort(hubByID{h})
}

// hubByID sorts the index's parallel id/bitmap slices by vertex id, the
// order HubBitmap's binary search requires.
type hubByID struct{ h *hubIndex }

func (s hubByID) Len() int           { return len(s.h.ids) }
func (s hubByID) Less(i, j int) bool { return s.h.ids[i] < s.h.ids[j] }
func (s hubByID) Swap(i, j int) {
	s.h.ids[i], s.h.ids[j] = s.h.ids[j], s.h.ids[i]
	s.h.maps[i], s.h.maps[j] = s.h.maps[j], s.h.maps[i]
}

// HubBitmap returns the bitmap form of v's neighbor list, or nil when v
// is not an indexed hub (no index, degree below τ, or excluded by the
// memory budget). The degree gate makes the common non-hub case one
// comparison; only genuine hubs pay the binary search.
//
//light:hotpath
func (g *Graph) HubBitmap(v VertexID) *bitset.Bitmap {
	h := g.hub
	if h == nil || g.Degree(v) < h.tau {
		return nil
	}
	lo, hi := 0, len(h.ids)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if h.ids[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.ids) && h.ids[lo] == v {
		return h.maps[lo]
	}
	return nil
}

// HubThreshold returns the degree threshold τ of the current hub
// index, or 0 when the graph carries none.
func (g *Graph) HubThreshold() int {
	if g.hub == nil {
		return 0
	}
	return g.hub.tau
}

// NumHubs returns the number of vertices with an indexed bitmap.
func (g *Graph) NumHubs() int {
	if g.hub == nil {
		return 0
	}
	return len(g.hub.ids)
}

// HubIndexBytes returns the bitmap storage held by the hub index.
func (g *Graph) HubIndexBytes() int64 {
	if g.hub == nil {
		return 0
	}
	return g.hub.bytes
}
