package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// square returns the 4-cycle 0-1-2-3-0.
func square() *Graph {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.MaxDegree() != 0 {
		t.Fatalf("zero Graph not empty: %v", &g)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("zero Graph invalid: %v", err)
	}
	built := NewBuilder(0).Build()
	if built.NumVertices() != 0 || built.NumEdges() != 0 {
		t.Fatalf("empty build not empty: %v", built)
	}
}

func TestBuilderBasics(t *testing.T) {
	g := square()
	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	want := []VertexID{1, 3}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, want) {
		t.Errorf("Neighbors(0) = %v, want %v", got, want)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderDeduplicatesAndDropsSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // reversed duplicate
	b.AddEdge(0, 1) // exact duplicate
	b.AddEdge(2, 2) // self-loop
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (dedup failed)", g.NumEdges())
	}
	if g.Degree(2) != 1 {
		t.Fatalf("Degree(2) = %d, want 1 (self-loop kept)", g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderGrowsVertexCount(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.Build()
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
}

func TestHasEdge(t *testing.T) {
	g := square()
	cases := []struct {
		u, v VertexID
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 2, false}, {2, 0, false},
		{2, 3, true}, {1, 3, false}, {0, 0, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestFromAdjacency(t *testing.T) {
	g := FromAdjacency([][]VertexID{
		{1, 2}, {0, 2}, {0, 1, 3}, {2},
	})
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if !g.HasEdge(2, 3) || g.HasEdge(1, 3) {
		t.Fatal("adjacency mismatch")
	}
}

func TestReorderDegreeOrder(t *testing.T) {
	// Star plus pendant: vertex 0 is the hub with degree 4; after
	// reordering it must get the largest ID.
	b := NewBuilder(5)
	for v := VertexID(1); v <= 4; v++ {
		b.AddEdge(0, v)
	}
	b.AddEdge(1, 2)
	g, mapping := ReorderWithMapping(b.Build())
	if !g.IsOrdered() {
		t.Fatal("reordered graph not degree-ordered")
	}
	if mapping[0] != 4 {
		t.Fatalf("hub mapped to %d, want 4 (largest ID)", mapping[0])
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after reorder: %v", err)
	}
	// Edge/vertex counts preserved.
	if g.NumEdges() != 5 || g.NumVertices() != 5 {
		t.Fatalf("reorder changed size: %v", g)
	}
}

func TestReorderTiesBreakByOldID(t *testing.T) {
	g := square() // all degrees equal: reorder must be the identity
	ng, mapping := ReorderWithMapping(g)
	for old, new := range mapping {
		if VertexID(old) != new {
			t.Fatalf("tie-break broken: %d -> %d", old, new)
		}
	}
	if !reflect.DeepEqual(ng.Neighbors(0), g.Neighbors(0)) {
		t.Fatal("identity reorder changed adjacency")
	}
}

func TestReorderPreservesIsomorphism(t *testing.T) {
	// Degree multiset and per-edge degree pairs must be preserved.
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(50)
	for i := 0; i < 200; i++ {
		b.AddEdge(VertexID(rng.Intn(50)), VertexID(rng.Intn(50)))
	}
	g := b.Build()
	ng, mapping := ReorderWithMapping(g)
	if ng.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", g.NumEdges(), ng.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(VertexID(v)) != ng.Degree(mapping[v]) {
			t.Fatalf("degree of %d changed under mapping", v)
		}
		for _, w := range g.Neighbors(VertexID(v)) {
			if !ng.HasEdge(mapping[v], mapping[w]) {
				t.Fatalf("edge (%d,%d) lost under mapping", v, w)
			}
		}
	}
}

func TestReadEdgeList(t *testing.T) {
	in := `# a comment
% another comment
0 1
1 2 extra-fields-ignored
2 0

3 3
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("got %v, want N=4 M=3", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 b\n", "0 -1\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q): expected error", in)
		}
	}
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder(100)
	for i := 0; i < 400; i++ {
		b.AddEdge(VertexID(rng.Intn(100)), VertexID(rng.Intn(100)))
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteCSR(&buf); err != nil {
		t.Fatalf("WriteCSR: %v", err)
	}
	g2, err := ReadCSR(&buf)
	if err != nil {
		t.Fatalf("ReadCSR: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %v vs %v", g, g2)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if !reflect.DeepEqual(g.Neighbors(VertexID(v)), g2.Neighbors(VertexID(v))) {
			t.Fatalf("round trip changed neighbors of %d", v)
		}
	}
}

func TestReadCSRRejectsGarbage(t *testing.T) {
	if _, err := ReadCSR(bytes.NewReader([]byte("not a csr file at all........"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
	if _, err := ReadCSR(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestMemoryBytesAndStats(t *testing.T) {
	g := square()
	want := int64(5*8 + 8*4)
	if got := g.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
	if got := g.AverageDegree(); got != 2 {
		t.Errorf("AverageDegree = %v, want 2", got)
	}
	if got := g.DegreeSum2(); got != 16 {
		t.Errorf("DegreeSum2 = %v, want 16", got)
	}
	p := g.EdgeProbability()
	if p <= 0.6 || p >= 0.7 { // 8/12
		t.Errorf("EdgeProbability = %v, want 2/3", p)
	}
}

// TestQuickBuilderInvariants property-checks that any multiset of edges
// produces a valid, symmetric, deduplicated CSR graph.
func TestQuickBuilderInvariants(t *testing.T) {
	f := func(pairs []uint16) bool {
		b := NewBuilder(0)
		seen := map[[2]VertexID]bool{}
		for i := 0; i+1 < len(pairs); i += 2 {
			u, v := VertexID(pairs[i]%512), VertexID(pairs[i+1]%512)
			b.AddEdge(u, v)
			if u != v {
				if u > v {
					u, v = v, u
				}
				seen[[2]VertexID{u, v}] = true
			}
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		return g.NumEdges() == int64(len(seen))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReorderIsPermutation property-checks that reordering is a
// bijection preserving the degree multiset.
func TestQuickReorderIsPermutation(t *testing.T) {
	f := func(pairs []uint16) bool {
		b := NewBuilder(1)
		for i := 0; i+1 < len(pairs); i += 2 {
			b.AddEdge(VertexID(pairs[i]%128), VertexID(pairs[i+1]%128))
		}
		g := b.Build()
		ng, mapping := ReorderWithMapping(g)
		if !ng.IsOrdered() || ng.Validate() != nil {
			return false
		}
		seen := make([]bool, len(mapping))
		for _, nv := range mapping {
			if seen[nv] {
				return false
			}
			seen[nv] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
