package graph

import (
	"bytes"
	"compress/gzip"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestLoadEdgeListGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt.gz")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte("# triangle\n0 1\n1 2\n2 0\n")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
	// Not actually gzip → clear error, not garbage parse.
	bad := filepath.Join(dir, "bad.gz")
	if err := os.WriteFile(bad, []byte("0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEdgeList(bad); err == nil {
		t.Fatal("accepted non-gzip .gz file")
	}
}

func TestLoadEdgeListPlainFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsOrdered() {
		t.Fatal("LoadEdgeList must return a degree-ordered graph")
	}
}

// TestReadCSRRejectsCorruption flips bytes all over a valid CSR payload
// and requires every corrupted variant to either fail loading or still
// satisfy Validate — never to yield a silently broken graph.
func TestReadCSRRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	b := NewBuilder(40)
	for i := 0; i < 120; i++ {
		b.AddEdge(VertexID(rng.Intn(40)), VertexID(rng.Intn(40)))
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteCSR(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), orig...)
		pos := rng.Intn(len(corrupted))
		corrupted[pos] ^= byte(1 + rng.Intn(255))
		got, err := ReadCSR(bytes.NewReader(corrupted))
		if err != nil {
			continue // rejected: good
		}
		// Accepted: the flip must have been semantically harmless — the
		// graph still passes full validation.
		if verr := got.Validate(); verr != nil {
			t.Fatalf("trial %d: corrupted CSR accepted but invalid: %v", trial, verr)
		}
	}
}

// TestReadCSRTruncation: every truncation must error, never hang or
// return a partial graph.
func TestReadCSRTruncation(t *testing.T) {
	b := NewBuilder(10)
	for i := 0; i < 9; i++ {
		b.AddEdge(VertexID(i), VertexID(i+1))
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteCSR(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := ReadCSR(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestSaveLoadCSRFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr")
	g := FromAdjacency([][]VertexID{{1, 2}, {0}, {0}})
	if err := g.SaveCSR(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip mismatch")
	}
	if _, err := LoadCSR(filepath.Join(dir, "missing.csr")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := g.SaveCSR(filepath.Join(dir, "nodir", "g.csr")); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
