package graph

import (
	"bytes"
	"compress/gzip"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestLoadEdgeListGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt.gz")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte("# triangle\n0 1\n1 2\n2 0\n")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
	// Not actually gzip → clear error, not garbage parse.
	bad := filepath.Join(dir, "bad.gz")
	if err := os.WriteFile(bad, []byte("0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEdgeList(bad); err == nil {
		t.Fatal("accepted non-gzip .gz file")
	}
}

func TestLoadEdgeListPlainFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsOrdered() {
		t.Fatal("LoadEdgeList must return a degree-ordered graph")
	}
}

// TestReadCSRRejectsCorruption flips bytes all over a valid CSR payload
// and requires every corrupted variant to either fail loading or still
// satisfy Validate — never to yield a silently broken graph.
func TestReadCSRRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	b := NewBuilder(40)
	for i := 0; i < 120; i++ {
		b.AddEdge(VertexID(rng.Intn(40)), VertexID(rng.Intn(40)))
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteCSR(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), orig...)
		pos := rng.Intn(len(corrupted))
		corrupted[pos] ^= byte(1 + rng.Intn(255))
		// Version 2 carries a CRC32 trailer: any single-byte change —
		// header, payload, or trailer — must be rejected outright.
		if _, err := ReadCSR(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("trial %d: flip at byte %d accepted", trial, pos)
		}
	}
}

// TestReadCSRLegacyV1 verifies version-1 files (no CRC trailer) are
// still readable, and that a v1 file claiming version 2 is rejected
// (its last four payload bytes would be misread as a trailer).
func TestReadCSRLegacyV1(t *testing.T) {
	g := FromAdjacency([][]VertexID{{1, 2}, {0}, {0}})
	var buf bytes.Buffer
	if err := g.WriteCSR(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte(nil), buf.Bytes()[:buf.Len()-4]...) // strip trailer
	v1[8] = 1                                               // version field
	got, err := ReadCSR(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("legacy v1 rejected: %v", err)
	}
	if got.NumEdges() != g.NumEdges() || got.NumVertices() != g.NumVertices() {
		t.Fatalf("legacy v1 round trip mismatch: %v", got)
	}
	v1[8] = 2 // v2 without a real trailer must fail the CRC or length check
	if _, err := ReadCSR(bytes.NewReader(v1)); err == nil {
		t.Fatal("trailerless v2 accepted")
	}
}

// TestReadCSRTruncation: every truncation must error, never hang or
// return a partial graph.
func TestReadCSRTruncation(t *testing.T) {
	b := NewBuilder(10)
	for i := 0; i < 9; i++ {
		b.AddEdge(VertexID(i), VertexID(i+1))
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteCSR(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := ReadCSR(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestSaveLoadCSRFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr")
	g := FromAdjacency([][]VertexID{{1, 2}, {0}, {0}})
	if err := g.SaveCSR(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip mismatch")
	}
	if _, err := LoadCSR(filepath.Join(dir, "missing.csr")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := g.SaveCSR(filepath.Join(dir, "nodir", "g.csr")); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
