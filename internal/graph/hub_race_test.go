package graph

import (
	"sync"
	"testing"
)

// TestHubIndexConcurrentBuildAndProbe is the data-race regression test
// for the nil-then-swap rebuild: concurrent BuildHubIndex calls while
// readers probe HubBitmap must neither race (caught by -race) nor
// observe a partially built index (a hub whose bitmap momentarily
// disappears or loses neighbors). Pre-fix, BuildHubIndex nilled g.hub
// and then mutated the new index in place while HubBitmap read it.
func TestHubIndexConcurrentBuildAndProbe(t *testing.T) {
	g := starGraph(200, [][2]VertexID{{1, 2}, {2, 3}, {3, 4}})
	g.BuildHubIndex(5)
	center := VertexID(0) // starGraph keeps original ids: 0 is the center
	if g.HubBitmap(center) == nil {
		t.Fatal("fixture: center is not an indexed hub")
	}
	wantDeg := g.Degree(center)

	var readers, builders sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Either snapshot must be complete: the center's bitmap
				// is present at both τ values and carries every leaf.
				bmp := g.HubBitmap(center)
				if bmp == nil {
					t.Error("center bitmap vanished mid-rebuild")
					return
				}
				n := 0
				for _, w := range g.Neighbors(center) {
					if bmp.Contains(w) {
						n++
					}
				}
				if n != wantDeg {
					t.Errorf("partial bitmap: %d of %d neighbors present", n, wantDeg)
					return
				}
			}
		}()
	}
	for b := 0; b < 2; b++ {
		builders.Add(1)
		go func(b int) {
			defer builders.Done()
			for i := 0; i < 50; i++ {
				g.BuildHubIndex(5 + b) // alternating τ defeats the same-τ fast path
			}
		}(b)
	}
	builders.Wait()
	close(stop)
	readers.Wait()
}

// TestBuildHubIndexSameTauIdempotent pins the fast path: repeating
// BuildHubIndex with the τ the current index was built with must not
// rebuild.
func TestBuildHubIndexSameTauIdempotent(t *testing.T) {
	g := starGraph(100, nil)
	base := g.HubBuilds() // construction's auto-build
	if base == 0 {
		t.Fatal("construction did not build the index")
	}
	g.BuildHubIndex(7)
	if got := g.HubBuilds(); got != base+1 {
		t.Fatalf("explicit build: HubBuilds = %d, want %d", got, base+1)
	}
	for i := 0; i < 5; i++ {
		g.BuildHubIndex(7)
	}
	if got := g.HubBuilds(); got != base+1 {
		t.Fatalf("repeated same-τ builds: HubBuilds = %d, want %d", got, base+1)
	}
	g.BuildHubIndex(9)
	if got := g.HubBuilds(); got != base+2 {
		t.Fatalf("changed τ: HubBuilds = %d, want %d", got, base+2)
	}
}

// TestEnsureHubIndexFirstWins pins the query-path policy: the first
// EnsureHubIndex τ on a graph rebuilds once and pins; concurrent and
// later calls — same or conflicting τ — are no-ops, and only an
// explicit BuildHubIndex overrides the pin.
func TestEnsureHubIndexFirstWins(t *testing.T) {
	g := starGraph(100, nil)
	base := g.HubBuilds()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.EnsureHubIndex(7)
		}()
	}
	wg.Wait()
	if got := g.HubBuilds(); got != base+1 {
		t.Fatalf("16 concurrent EnsureHubIndex(7): HubBuilds = %d, want %d (one shared build)", got, base+1)
	}
	if got := g.HubThreshold(); got != 7 {
		t.Fatalf("HubThreshold = %d, want 7", got)
	}

	// A conflicting later τ loses: no rebuild, winner's τ stays.
	if g.EnsureHubIndex(13) {
		t.Fatal("conflicting EnsureHubIndex(13) reported a build")
	}
	if got := g.HubThreshold(); got != 7 {
		t.Fatalf("after losing Ensure: HubThreshold = %d, want 7", got)
	}
	if got := g.HubBuilds(); got != base+1 {
		t.Fatalf("after losing Ensure: HubBuilds = %d, want %d", got, base+1)
	}

	// The explicit API still applies its argument.
	g.BuildHubIndex(13)
	if got := g.HubThreshold(); got != 13 {
		t.Fatalf("after explicit BuildHubIndex(13): HubThreshold = %d, want 13", got)
	}
}

// TestEnsureHubIndexAfterExplicitBuild: an explicit BuildHubIndex pins
// τ, so a later query-path Ensure with a different τ must not rebuild.
func TestEnsureHubIndexAfterExplicitBuild(t *testing.T) {
	g := starGraph(100, nil)
	g.BuildHubIndex(9)
	n := g.HubBuilds()
	if g.EnsureHubIndex(5) {
		t.Fatal("EnsureHubIndex(5) rebuilt over an explicit BuildHubIndex(9)")
	}
	if got := g.HubBuilds(); got != n {
		t.Fatalf("HubBuilds = %d, want %d", got, n)
	}
	if got := g.HubThreshold(); got != 9 {
		t.Fatalf("HubThreshold = %d, want 9", got)
	}
}
