package graph

import (
	"testing"
)

// starGraph builds a star: center 0 with the given number of leaves,
// plus optional chord edges among leaves.
func starGraph(leaves int, chords [][2]VertexID) *Graph {
	b := NewBuilder(leaves + 1)
	for i := 1; i <= leaves; i++ {
		b.AddEdge(0, VertexID(i))
	}
	for _, c := range chords {
		b.AddEdge(c[0], c[1])
	}
	return b.Build()
}

func TestAutoThresholdFloor(t *testing.T) {
	// Sparse graph: avg degree ~2, so the auto τ lands on the floor.
	g := starGraph(10, nil)
	if got := g.HubThreshold(); got != hubMinDegreeFloor {
		t.Fatalf("HubThreshold = %d, want floor %d", got, hubMinDegreeFloor)
	}
	// No vertex reaches degree 64 → no hubs, but the index exists.
	if g.NumHubs() != 0 || g.HubIndexBytes() != 0 {
		t.Fatalf("sparse graph indexed %d hubs / %d bytes", g.NumHubs(), g.HubIndexBytes())
	}
	if g.HubBitmap(0) != nil {
		t.Fatal("non-hub center returned a bitmap")
	}
}

func TestAutoBuildIndexesHighDegreeHub(t *testing.T) {
	// 100-leaf star: center degree 100 >= floor τ=64 → auto-indexed at
	// Build time with no explicit BuildHubIndex call.
	g := starGraph(100, nil)
	if g.NumHubs() != 1 {
		t.Fatalf("NumHubs = %d, want 1", g.NumHubs())
	}
	bmp := g.HubBitmap(0)
	if bmp == nil {
		t.Fatal("center has no bitmap")
	}
	for v := 1; v <= 100; v++ {
		if !bmp.Contains(VertexID(v)) {
			t.Fatalf("center bitmap missing leaf %d", v)
		}
	}
	if bmp.Contains(0) {
		t.Fatal("center bitmap contains the center itself")
	}
	if g.HubBitmap(1) != nil {
		t.Fatal("leaf returned a bitmap")
	}
	if g.HubIndexBytes() <= 0 {
		t.Fatal("hub index reports zero bytes")
	}
}

func TestExplicitThresholdBoundary(t *testing.T) {
	// Degrees: 0:4, 1:2, 2:2, 3:1, 4:1 — τ=2 indexes {0,1,2}, τ=3
	// only {0}, τ=5 none.
	g := starGraph(4, [][2]VertexID{{1, 2}})
	g.BuildHubIndex(2)
	if g.HubThreshold() != 2 || g.NumHubs() != 3 {
		t.Fatalf("τ=2: threshold %d hubs %d, want 2/3", g.HubThreshold(), g.NumHubs())
	}
	// Boundary: degree exactly τ is a hub.
	if g.HubBitmap(1) == nil || g.HubBitmap(2) == nil {
		t.Fatal("degree-τ vertex not indexed")
	}
	if g.HubBitmap(3) != nil {
		t.Fatal("degree τ-1 vertex indexed")
	}
	g.BuildHubIndex(3)
	if g.NumHubs() != 1 || g.HubBitmap(0) == nil || g.HubBitmap(1) != nil {
		t.Fatalf("τ=3: hubs %d", g.NumHubs())
	}
	g.BuildHubIndex(5)
	if g.NumHubs() != 0 {
		t.Fatalf("τ=5: hubs %d, want 0", g.NumHubs())
	}
	// Negative drops the index entirely.
	g.BuildHubIndex(-1)
	if g.HubThreshold() != 0 || g.HubBitmap(0) != nil {
		t.Fatal("BuildHubIndex(-1) did not drop the index")
	}
}

// TestBitmapMatchesNeighbors is the content property: with τ=1 every
// vertex is a hub and each bitmap must answer Contains exactly like a
// membership query on the neighbor list.
func TestBitmapMatchesNeighbors(t *testing.T) {
	g := starGraph(6, [][2]VertexID{{1, 2}, {2, 3}, {5, 6}})
	g.BuildHubIndex(1)
	n := g.NumVertices()
	if g.NumHubs() != n {
		t.Fatalf("τ=1 indexed %d of %d vertices", g.NumHubs(), n)
	}
	for v := 0; v < n; v++ {
		bmp := g.HubBitmap(VertexID(v))
		if bmp == nil {
			t.Fatalf("vertex %d has no bitmap at τ=1", v)
		}
		if bmp.Ones() != g.Degree(VertexID(v)) {
			t.Fatalf("vertex %d bitmap has %d ones, degree is %d", v, bmp.Ones(), g.Degree(VertexID(v)))
		}
		for u := 0; u < n; u++ {
			if bmp.Contains(VertexID(u)) != g.HasEdge(VertexID(v), VertexID(u)) {
				t.Fatalf("bitmap(%d).Contains(%d) = %v, HasEdge = %v",
					v, u, bmp.Contains(VertexID(u)), g.HasEdge(VertexID(v), VertexID(u)))
			}
		}
	}
}

// TestBudgetSkipsWideSpans pins the memory budget: a hub whose bitmap
// span exceeds the remaining budget is skipped (falls back to list
// kernels) while narrow-span hubs still get bitmaps.
func TestBudgetSkipsWideSpans(t *testing.T) {
	// Vertex 0's neighbors {1, wide} span ~600k ids → ~75 KB bitmap,
	// over the 64 KiB floor budget (the adjacency is tiny). The triangle
	// 10-11-12 spans 3 ids each.
	const wide = 600000
	b := NewBuilder(wide + 1)
	b.AddEdge(0, 1)
	b.AddEdge(0, wide)
	b.AddEdge(10, 11)
	b.AddEdge(10, 12)
	b.AddEdge(11, 12)
	g := b.Build()
	g.BuildHubIndex(2)
	if g.HubBitmap(0) != nil {
		t.Fatal("over-budget hub got a bitmap")
	}
	if g.HubBitmap(10) == nil || g.HubBitmap(11) == nil || g.HubBitmap(12) == nil {
		t.Fatal("narrow-span hubs skipped")
	}
	if g.HubIndexBytes() > g.hubBudgetBytes() {
		t.Fatalf("index bytes %d exceed budget %d", g.HubIndexBytes(), g.hubBudgetBytes())
	}
}

func TestReorderRebuildsIndex(t *testing.T) {
	g := starGraph(80, nil)
	rg := Reorder(g)
	// In the reordered (degree-ascending) labeling the center is the
	// last vertex; its bitmap must reflect the new ids.
	center := VertexID(rg.NumVertices() - 1)
	if rg.Degree(center) != 80 {
		t.Fatalf("reordered center degree %d", rg.Degree(center))
	}
	bmp := rg.HubBitmap(center)
	if bmp == nil {
		t.Fatal("reordered center not indexed")
	}
	for _, u := range rg.Neighbors(center) {
		if !bmp.Contains(u) {
			t.Fatalf("reordered bitmap missing neighbor %d", u)
		}
	}
}

func TestEmptyGraphNoIndex(t *testing.T) {
	var g Graph
	g.BuildHubIndex(0)
	if g.HubThreshold() != 0 || g.NumHubs() != 0 || g.HubBitmap(0) != nil {
		t.Fatal("empty graph built a hub index")
	}
	eg := NewBuilder(3).Build() // vertices, no edges
	if eg.HubThreshold() != 0 {
		t.Fatalf("edgeless graph τ = %d", eg.HubThreshold())
	}
}

func TestHubBitmapZeroAlloc(t *testing.T) {
	g := starGraph(100, nil)
	if n := testing.AllocsPerRun(100, func() {
		_ = g.HubBitmap(0)
		_ = g.HubBitmap(1)
	}); n != 0 {
		t.Fatalf("HubBitmap allocates %v per run", n)
	}
}
