package light

import (
	"errors"
	"fmt"
	"time"

	"light/internal/admission"
)

// ErrOverloaded is returned when a run sharing a Governor cannot get
// its guaranteed worker slot before Options.AdmissionTimeout elapses —
// the governor's load-shedding signal. Callers should back off and
// retry, or surface the overload to their own clients.
var ErrOverloaded = errors.New("light: overloaded, admission deadline exceeded")

// ErrMemoryBudget is returned when a run exhausts its memory budget
// after every degradation rung (exact-size arena slabs, worker
// shedding). A checkpointing run still writes a valid final checkpoint
// first, so the work is resumable with a larger budget.
var ErrMemoryBudget = errors.New("light: memory budget exceeded")

// ErrStalled is returned when the stall watchdog cancelled the run
// (GovernorConfig.CancelOnStall) after a worker stopped making
// progress; the RunReport's StallDump carries the diagnostic.
var ErrStalled = errors.New("light: run cancelled by stall watchdog")

// GovernorConfig configures NewGovernor.
type GovernorConfig struct {
	// Slots is the worker-slot budget shared by every run admitted
	// through the governor; defaults to GOMAXPROCS. Each admitted run
	// is guaranteed one slot and acquires up to its Options.Workers
	// opportunistically, returning the surplus while other runs wait.
	Slots int
	// MemoryBudget caps the total candidate-arena bytes across all
	// admitted runs (0 = unlimited). Per-run Options.MemoryBudget
	// ceilings nest under it.
	MemoryBudget int64
	// StallInterval is the watchdog sampling period (default 1s).
	StallInterval time.Duration
	// StallPatience is how many consecutive intervals a busy worker may
	// go without progress before the watchdog records a diagnostic
	// (default 5).
	StallPatience int
	// CancelOnStall makes a fired watchdog cancel the stalled run with
	// ErrStalled instead of only recording the diagnostic.
	CancelOnStall bool
	// DisableWatchdog turns the stall watchdog off for admitted runs.
	DisableWatchdog bool
}

// Governor is a process-wide resource governor shared by concurrent
// runs: a FIFO-fair elastic worker-slot budget, an optional shared
// memory budget, and a stall watchdog. Create one Governor per process
// (or per tenant class) and point every run's Options.Governor at it;
// all methods are safe for concurrent use.
type Governor struct {
	g *admission.Governor
}

// NewGovernor returns a Governor with cfg, applying defaults.
func NewGovernor(cfg GovernorConfig) *Governor {
	return &Governor{g: admission.New(admission.Config{
		Slots:           cfg.Slots,
		MemoryBudget:    cfg.MemoryBudget,
		StallInterval:   cfg.StallInterval,
		StallPatience:   cfg.StallPatience,
		CancelOnStall:   cfg.CancelOnStall,
		DisableWatchdog: cfg.DisableWatchdog,
	})}
}

// Slots returns the governor's total worker-slot budget.
func (gv *Governor) Slots() int { return gv.g.Slots() }

// ActiveQueries returns the number of currently admitted runs.
func (gv *Governor) ActiveQueries() int { return gv.g.ActiveQueries() }

// MemoryInUse returns the bytes currently reserved against the
// governor's shared memory budget (0 when unbudgeted).
func (gv *Governor) MemoryInUse() int64 { return gv.g.MemoryInUse() }

// Timeouts returns how many admissions failed with ErrOverloaded.
func (gv *Governor) Timeouts() uint64 { return gv.g.Timeouts() }

// validate is the single pre-spawn choke point for Options: every
// invalid field is rejected with an error here, before any worker
// goroutine, arena, or checkpoint file is created. (Engine- and
// scheduler-level checks below this layer remain as defense in depth.)
func (o Options) validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("light: Options.Workers is %d, must be non-negative (0 means one worker)", o.Workers)
	}
	if o.TimeLimit < 0 {
		return fmt.Errorf("light: Options.TimeLimit is %v, must be non-negative", o.TimeLimit)
	}
	if o.CheckpointInterval < 0 {
		return fmt.Errorf("light: Options.CheckpointInterval is %v, must be non-negative", o.CheckpointInterval)
	}
	if o.MemoryBudget < 0 {
		return fmt.Errorf("light: Options.MemoryBudget is %d, must be non-negative (0 means unlimited)", o.MemoryBudget)
	}
	if o.AdmissionTimeout < 0 {
		return fmt.Errorf("light: Options.AdmissionTimeout is %v, must be non-negative (0 waits until the context is done)", o.AdmissionTimeout)
	}
	if o.HubDegreeThreshold < 0 {
		return fmt.Errorf("light: Options.HubDegreeThreshold is %d, must be non-negative (0 keeps the auto-tuned index)", o.HubDegreeThreshold)
	}
	return nil
}
