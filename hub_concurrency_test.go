package light

import (
	"sync"
	"testing"
)

// These are the regression tests for the shared-Graph hub-index data
// race: run() and CountBatchContext used to call BuildHubIndex on the
// shared *Graph per query, which nilled-then-swapped the index under
// the hot-path HubBitmap reader — two concurrent queries with
// HubDegreeThreshold set were a data race (caught by -race pre-fix)
// that could crash or silently drop bitmap probes mid-run.

// TestConcurrentQueriesHubThreshold runs concurrent Counts with
// conflicting HubDegreeThreshold values on one shared *Graph. Pre-fix
// this races; post-fix every query returns the exact reference count
// (τ shifts kernel strategy only, never the match set).
func TestConcurrentQueriesHubThreshold(t *testing.T) {
	g := GenerateBarabasiAlbert(600, 6, 17)
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Count(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}

	const queries = 8
	var wg sync.WaitGroup
	var results [queries]Result
	var errs [queries]error
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			opts := Options{
				Intersection:       HybridBitmap,
				HubDegreeThreshold: 3 + q%3, // conflicting τ across queries
				Workers:            1 + q%2,
			}
			results[q], errs[q] = Count(g, p, opts)
		}(q)
	}
	wg.Wait()
	for q := 0; q < queries; q++ {
		if errs[q] != nil {
			t.Errorf("query %d: %v", q, errs[q])
			continue
		}
		if results[q].Matches != ref.Matches {
			t.Errorf("query %d: matches = %d, want %d", q, results[q].Matches, ref.Matches)
		}
	}
}

// TestHubIndexOneBuildAcrossQueries pins the first-wins preparation:
// N queries requesting a τ on one graph — concurrently and repeatedly,
// single and batch — trigger exactly one index build; conflicting τ
// values do not thrash rebuilds.
func TestHubIndexOneBuildAcrossQueries(t *testing.T) {
	g := GenerateBarabasiAlbert(400, 5, 23)
	tri, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	base := g.snap().base.HubBuilds() // construction's auto-build

	const queries = 12
	var wg sync.WaitGroup
	errCh := make(chan error, queries)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			// Every query asks for τ=4 except two dissenters asking 9:
			// whichever τ wins, there must be exactly one build.
			tau := 4
			if q%5 == 0 {
				tau = 9
			}
			opts := Options{Intersection: MergeBitmap, HubDegreeThreshold: tau}
			var err error
			if q%2 == 0 {
				_, err = Count(g, tri, opts)
			} else {
				_, err = CountBatch(g, []BatchQuery{{Pattern: tri}}, opts)
			}
			errCh <- err
		}(q)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := g.snap().base.HubBuilds(); got != base+1 {
		t.Errorf("HubBuilds = %d after %d queries, want %d (one shared build)", got, queries, base+1)
	}

	// Sequential repeats with either τ stay on the pinned index.
	for _, tau := range []int{4, 9, 4} {
		if _, err := Count(g, tri, Options{HubDegreeThreshold: tau}); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.snap().base.HubBuilds(); got != base+1 {
		t.Errorf("HubBuilds = %d after sequential repeats, want %d", got, base+1)
	}
}
