package light

import (
	"testing"
)

// triangleGraph is the smallest interesting data graph: K3, every vertex
// degree 2.
func triangleGraph(t *testing.T) *Graph {
	t.Helper()
	return NewGraph(3, [][2]VertexID{{0, 1}, {0, 2}, {1, 2}})
}

// TestRunReportHandCountedTriangle pins the counter semantics on a graph
// small enough to trace by hand: K3 matched against the triangle pattern
// with the enumeration order fixed to [0,1,2] and the Merge kernel.
//
// Walkthrough (symmetry breaking forces v0 < v1 < v2):
//
//	roots 0,1,2                                 → 3 nodes, 3 COMPs of u1 (alias, no intersection)
//	root 0: u1 over N(0)={1,2}                  → 2 nodes
//	  v1=1: COMP u2 = N(0)∩N(1)                 → 1 intersection, 4 elements; MAT {2} → 1 node, 1 match
//	  v1=2: COMP u2 = N(0)∩N(2)                 → 1 intersection, 4 elements; bound v2>2 → nothing
//	root 1: u1 over {v>1}∩N(1)={2}              → 1 node
//	  v1=2: COMP u2 = N(1)∩N(2)                 → 1 intersection, 4 elements; bound v2>2 → nothing
//	root 2: u1 over {v>2}∩N(2)=∅                → nothing
//
// Totals: 1 match, 7 nodes, 6 COMPs, 3 intersections (all merge,
// 0 galloping), 12 elements.
func TestRunReportHandCountedTriangle(t *testing.T) {
	g := triangleGraph(t)
	p, err := PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(g, p, Options{Intersection: Merge, Order: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r == nil {
		t.Fatal("Count returned no report")
	}
	if r.Schema != RunReportSchema {
		t.Fatalf("schema %q, want %q", r.Schema, RunReportSchema)
	}
	want := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"matches", r.Matches, 1},
		{"nodes", r.Nodes, 7},
		{"comps", r.Comps, 6},
		{"intersections", r.Intersections, 3},
		{"galloping", r.Galloping, 0},
		{"merges", r.Merges, 3},
		{"elements", r.Elements, 12},
	}
	for _, w := range want {
		if w.got != w.want {
			t.Errorf("%s = %d, want %d", w.name, w.got, w.want)
		}
	}
	if res.Matches != r.Matches || res.Nodes != r.Nodes || res.Intersections != r.Intersections {
		t.Errorf("Result and Report disagree: %+v vs %+v", res, r)
	}
}

// TestRunReportDeterministicAcrossWorkers is the invariant the CI bench
// gate rests on: the engine counters depend only on (graph, plan,
// kernel), never on worker count or donation timing.
func TestRunReportDeterministicAcrossWorkers(t *testing.T) {
	g, p := benchGraph(t)
	serial, err := Count(g, p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, err := Count(g, p, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s, w := serial.Report, par.Report
		if s.Matches != w.Matches || s.Nodes != w.Nodes || s.Comps != w.Comps ||
			s.Intersections != w.Intersections || s.Galloping != w.Galloping ||
			s.Elements != w.Elements {
			t.Errorf("workers=%d: counters drifted from serial:\nserial:   %+v\nparallel: %+v", workers, s, w)
		}
	}
}

// benchGraph builds a deterministic graph big enough to trigger real
// work stealing (many root chunks, donations under load).
func benchGraph(t *testing.T) (*Graph, *Pattern) {
	t.Helper()
	// Deterministic pseudo-random-ish graph without rand: connect i to
	// i/2 and i to i-1 (a dense preferential-attachment-like shape).
	n := 2000
	edges := make([][2]VertexID, 0, 3*n)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]VertexID{VertexID(i), VertexID(i / 2)})
		edges = append(edges, [2]VertexID{VertexID(i), VertexID(i - 1)})
		edges = append(edges, [2]VertexID{VertexID(i), VertexID((i * 7) % i)})
	}
	p, err := PatternByName("P2")
	if err != nil {
		t.Fatal(err)
	}
	return NewGraph(n, edges), p
}
