module light

go 1.22
