package light

import (
	"light/internal/pattern"
)

// Orbits describes the automorphism orbits of a pattern: pattern
// vertices that can be swapped by a symmetry play the same structural
// role, so per-vertex statistics are aggregated per orbit (the
// "graphlet degree vector" convention from the graphlet-kernel
// literature the paper's applications cite).
type Orbits struct {
	// OrbitOf[u] is the orbit index of pattern vertex u (0-based, dense).
	OrbitOf []int
	// Representatives[i] is the smallest pattern vertex in orbit i.
	Representatives []int
}

// NumOrbits returns the number of distinct orbits.
func (o *Orbits) NumOrbits() int { return len(o.Representatives) }

// PatternOrbits computes the automorphism orbits of p.
func PatternOrbits(p *Pattern) *Orbits {
	n := p.p.NumVertices()
	var orbitMask [pattern.MaxVertices]uint32
	for _, a := range p.p.Automorphisms() {
		for u := 0; u < n; u++ {
			orbitMask[u] |= 1 << uint(a[u])
		}
	}
	// Transitive closure: orbits are equivalence classes, but unioning
	// per-vertex images over the full group already yields the class.
	o := &Orbits{OrbitOf: make([]int, n)}
	seen := map[uint32]int{}
	for u := 0; u < n; u++ {
		idx, ok := seen[orbitMask[u]]
		if !ok {
			idx = len(o.Representatives)
			seen[orbitMask[u]] = idx
			o.Representatives = append(o.Representatives, u)
		}
		o.OrbitOf[u] = idx
	}
	return o
}

// OrbitCounts counts, for every data vertex and every pattern orbit, how
// many matched subgraphs the vertex participates in playing that orbit —
// the graphlet degree vector rows for pattern p. counts[i][v] is the
// count of orbit i at data vertex v.
//
// The enumeration cost equals Enumerate's; per-match work is O(n).
func OrbitCounts(g *Graph, p *Pattern, opts Options) (counts [][]uint64, orbits *Orbits, err error) {
	orbits = PatternOrbits(p)
	counts = make([][]uint64, orbits.NumOrbits())
	for i := range counts {
		counts[i] = make([]uint64, g.NumVertices())
	}
	_, err = Enumerate(g, p, opts, func(m []VertexID) bool {
		for u, v := range m {
			counts[orbits.OrbitOf[u]][v]++
		}
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	return counts, orbits, nil
}
